//! Streaming execution for columns larger than memory.
//!
//! Two ingest paths share the machinery here:
//!
//! * [`StreamSession::push_chunk`] takes `&[String]`, re-tokenizing every
//!   row to dispatch it — the zero-setup path for callers that only hold
//!   raw strings;
//! * [`StreamSession::push_column_chunk`] takes a
//!   [`ColumnChunk`](clx_column::ColumnChunk) interned through a persistent
//!   [`ColumnInterner`](clx_column::ColumnInterner), so streaming inherits
//!   the whole O(distinct) column path: a distinct value is tokenized once
//!   per *stream* (by the interner), decided once per stream (the session
//!   caches the outcome per distinct-id), and dispatched by integer leaf-id
//!   (a dense array index — no `Pattern` hashing). [`ColumnStream`] bundles
//!   the interner and a session into one owning handle.
//!
//! Either way each pushed chunk is transformed and *returned* to the caller
//! — to be written to a sink immediately — while the session retains only
//! mergeable counters plus (on the column path) the O(distinct) per-id
//! decision cache.

use std::mem::size_of;
use std::sync::Arc;
use std::time::Instant;

use clx_column::{ColumnChunk, ColumnInterner, StreamBudget};
use clx_pattern::Pattern;
use clx_telemetry::MetricSink;

use crate::compiled::CompiledProgram;
use crate::delta::ProgramDelta;
use crate::dispatch::DispatchCache;
use crate::parallel::ExecOptions;
use crate::report::{ChunkReport, ChunkStats, RowOutcome};

/// Estimated heap bytes retained by one stored outcome.
fn outcome_footprint(outcome: &RowOutcome) -> usize {
    match outcome {
        RowOutcome::Conforming { value } | RowOutcome::Flagged { value } => value.len(),
        RowOutcome::Transformed { from, to } => from.len() + to.len(),
    }
}

/// The per-stream cache of distinct-value decisions, indexed by the
/// interner's dense distinct-ids.
///
/// A value repeated across chunks is transformed exactly once per stream;
/// every later chunk containing it replays the stored outcome. Validity is
/// versioned at two levels: the cache is bound to the interner *instance*
/// whose ids index it (a chunk from a different interner resets it), and
/// every stored decision carries the distinct-id slot's recycle
/// [`generation`](clx_column::ColumnInterner::distinct_generation) — a
/// bounded interner that evicted and recycled a slot can therefore never
/// replay the old value's outcome for the new value. Stale entries are
/// pruned whenever the interner's eviction generation moves, so the cache
/// footprint tracks the interner's live set.
#[derive(Debug, Default)]
struct DistinctDecisions {
    source: Option<u64>,
    /// The interner eviction generation the cache was last pruned at.
    generation: u64,
    /// Slot -> (slot generation at decision time, outcome).
    decided: Vec<Option<(u64, RowOutcome)>>,
    /// Number of `Some` entries in `decided`.
    count: usize,
    /// Estimated heap bytes of the stored outcomes' strings.
    bytes: usize,
    /// Lifetime replays of a stored decision (cumulative — survives
    /// interner switches and prunes).
    hits: u64,
    /// Lifetime decisions that had to run the program.
    misses: u64,
}

impl DistinctDecisions {
    /// Decisions currently held (live distinct values decided this stream).
    fn len(&self) -> usize {
        self.count
    }

    /// Estimated heap bytes retained by the decision cache.
    fn memory_used(&self) -> usize {
        self.decided.capacity() * size_of::<Option<(u64, RowOutcome)>>() + self.bytes
    }

    fn clear(&mut self) {
        self.decided.clear();
        self.count = 0;
        self.bytes = 0;
    }

    /// Drop decisions whose slot was evicted (or recycled) since they were
    /// recorded, so evicted values release their outcome storage too.
    ///
    /// Incremental when the interner's bounded eviction log still covers
    /// the generation this cache last synced at: only the logged victim ids
    /// are probed, O(evicted) instead of O(slots). When the log has been
    /// outrun (many batches, or one oversized batch), falls back to the
    /// full walk — which is also what the log's caps guarantee is then the
    /// cheaper of the two.
    fn prune(&mut self, interner: &ColumnInterner) {
        if let Some(dirty) = interner.evicted_since(self.generation) {
            for id in dirty {
                self.invalidate_if_stale(id, interner);
            }
            return;
        }
        for id in 0..self.decided.len() {
            self.invalidate_if_stale(id as u32, interner);
        }
    }

    /// Drop the decision stored for `id` if its slot was evicted or
    /// recycled since it was recorded. Idempotent, so repeated ids in the
    /// eviction log are harmless.
    fn invalidate_if_stale(&mut self, id: u32, interner: &ColumnInterner) {
        let Some(slot) = self.decided.get_mut(id as usize) else {
            return;
        };
        let stale = slot.as_ref().is_some_and(|(gen, _)| {
            !interner.is_live(id) || *gen != interner.distinct_generation(id)
        });
        if stale {
            let (_, outcome) = slot.take().expect("checked above");
            self.count -= 1;
            self.bytes -= outcome_footprint(&outcome);
        }
    }

    /// Program-swap invalidation: drop every stored decision `delta`
    /// cannot prove stable, so the next chunk touching those ids
    /// re-decides them through the new program — the PR 5 generation
    /// machinery then takes over as if they had never been decided.
    /// Unaffected decisions keep replaying untouched. Returns the number
    /// of decisions invalidated; O(decided slots) delta checks, no row
    /// ever runs here.
    fn retain_unaffected(&mut self, delta: &ProgramDelta) -> usize {
        let mut invalidated = 0;
        // Screening memo keyed by leaf signature (see `BatchReport::patch`):
        // distincts sharing a format answer the affected-check once.
        let mut leaf_memo = std::collections::HashMap::new();
        for slot in &mut self.decided {
            let affected = slot
                .as_ref()
                .is_some_and(|(_, outcome)| delta.affects_outcome_memo(outcome, &mut leaf_memo));
            if affected {
                let (_, outcome) = slot.take().expect("checked above");
                self.count -= 1;
                self.bytes -= outcome_footprint(&outcome);
                invalidated += 1;
            }
        }
        invalidated
    }

    /// Execute one interned chunk, reusing stored decisions for already-seen
    /// distinct-ids and recording new ones. `telemetry` (if any) times each
    /// first-sight fused classification as `engine.fused.decide_ns`.
    fn execute_chunk(
        &mut self,
        program: &CompiledProgram,
        cache: &mut DispatchCache,
        chunk: &ColumnChunk<'_>,
        index: usize,
        telemetry: Option<&Arc<dyn MetricSink>>,
    ) -> ChunkReport {
        let interner = chunk.interner();
        if self.source != Some(interner.instance()) {
            self.clear();
            self.source = Some(interner.instance());
            self.generation = interner.generation();
        } else if self.generation != interner.generation() {
            // The interner evicted since the last chunk: release the
            // evicted slots' outcomes before serving this one.
            self.prune(interner);
            self.generation = interner.generation();
        }
        if self.decided.len() < interner.distinct_count() {
            self.decided.resize(interner.distinct_count(), None);
        }
        let outcomes: Vec<RowOutcome> = chunk
            .distinct_ids()
            .iter()
            .map(|&id| {
                let slot_generation = interner.distinct_generation(id);
                if let Some((gen, outcome)) = &self.decided[id as usize] {
                    if *gen == slot_generation {
                        self.hits += 1;
                        return outcome.clone();
                    }
                }
                self.misses += 1;
                let outcome = program.transform_one_by_leaf_id_observed(
                    cache,
                    interner.instance(),
                    interner.generation(),
                    interner.leaf_id(id),
                    interner.value(id),
                    interner.leaf(id),
                    telemetry,
                );
                self.bytes += outcome_footprint(&outcome);
                match self.decided[id as usize].replace((slot_generation, outcome.clone())) {
                    // Overwrote a stale decision prune() had not seen
                    // (unreachable through chunk(), which always steps the
                    // generation when it evicts — kept for safety).
                    Some((_, stale)) => self.bytes -= outcome_footprint(&stale),
                    None => self.count += 1,
                }
                outcome
            })
            .collect();
        ChunkReport::columnar(index, outcomes, chunk.row_map().to_vec())
    }
}

/// An in-progress streaming run over one compiled program.
///
/// The session owns its workers' dispatch caches and its per-distinct-id
/// decision cache, so leaf decisions *and* per-value outcomes made in one
/// pushed chunk are reused by every later chunk of the stream.
pub struct StreamSession<'p> {
    program: &'p CompiledProgram,
    options: ExecOptions,
    caches: Vec<DispatchCache>,
    decisions: DistinctDecisions,
    stats: ChunkStats,
    chunks: usize,
    /// Eviction count reported by the last pushed chunk's interner (the
    /// session does not own the interner; the caller does).
    evictions: u64,
    /// Peak of `decisions.memory_used()` + the pushed interners'
    /// `memory_used()` across the stream.
    peak_memory: usize,
}

impl CompiledProgram {
    /// Start a streaming run with default execution options.
    pub fn stream(&self) -> StreamSession<'_> {
        self.stream_with(ExecOptions::default())
    }

    /// Start a streaming run with explicit execution options.
    pub fn stream_with(&self, options: ExecOptions) -> StreamSession<'_> {
        StreamSession {
            program: self,
            options,
            caches: Vec::new(),
            decisions: DistinctDecisions::default(),
            stats: ChunkStats::default(),
            chunks: 0,
            evictions: 0,
            peak_memory: 0,
        }
    }
}

impl StreamSession<'_> {
    /// Transform the next chunk of the column and hand its rows back to the
    /// caller. Only the counters are retained by the session.
    ///
    /// Every row is re-tokenized to dispatch it; callers that can intern
    /// their chunks through a persistent
    /// [`ColumnInterner`](clx_column::ColumnInterner) should push
    /// [`StreamSession::push_column_chunk`] (or use [`ColumnStream`])
    /// instead and skip that work entirely.
    pub fn push_chunk(&mut self, rows: &[String]) -> ChunkReport {
        let batch = self
            .program
            .execute_pooled(rows, self.options, &mut self.caches);
        let stats = batch.stats;
        let report =
            ChunkReport::from_rows_with_stats(self.chunks, batch.into_row_outcomes(), stats);
        self.stats.absorb(&report.stats);
        self.chunks += 1;
        report
    }

    /// Transform the next chunk of an *interned* stream: each distinct-id
    /// appearing in the chunk is decided at most once per stream (cached
    /// outcomes replay for ids seen in earlier chunks), dispatch runs on
    /// the dense leaf-id tier of the [`DispatchCache`], and the returned
    /// [`ChunkReport`] is columnar — one stored outcome per distinct value
    /// in the chunk, sharing the chunk's row map shape.
    ///
    /// The rows the report describes are exactly what
    /// [`StreamSession::push_chunk`] would produce for the same text; the
    /// session's counters absorb the chunk either way.
    ///
    /// Chunks from a bounded ([`BudgetPolicy::Evict`](clx_column::BudgetPolicy))
    /// interner are fully supported: the per-id decision cache validates
    /// every replay against the id's slot generation and prunes decisions
    /// for evicted values, so the session's retained state tracks the
    /// interner's live set instead of growing without bound. Note the
    /// session only follows the interner it is handed — under a
    /// [`Fallback`](clx_column::BudgetPolicy::Fallback) budget the
    /// *caller* owns the interner and must watch
    /// [`over_budget`](clx_column::ColumnInterner::over_budget) and stop
    /// pushing interned chunks itself (or use [`ColumnStream`], which
    /// does).
    pub fn push_column_chunk(&mut self, chunk: &ColumnChunk<'_>) -> ChunkReport {
        if self.caches.is_empty() {
            self.caches.push(DispatchCache::new());
        }
        let report = self.decisions.execute_chunk(
            self.program,
            &mut self.caches[0],
            chunk,
            self.chunks,
            None,
        );
        self.stats.absorb(&report.stats);
        self.chunks += 1;
        self.evictions = chunk.interner().evictions();
        self.peak_memory = self
            .peak_memory
            .max(self.decisions.memory_used() + chunk.interner().memory_used());
        report
    }

    /// Distinct values decided so far on the column path (the size of the
    /// per-stream outcome cache; `0` for pure `&[String]` streams).
    pub fn distinct_decided(&self) -> usize {
        self.decisions.len()
    }

    /// Estimated heap bytes retained by the session's per-distinct-id
    /// decision cache (`0` for pure `&[String]` streams). The interner's
    /// own footprint is its owner's to report
    /// ([`clx_column::ColumnInterner::memory_used`]); [`ColumnStream`]
    /// owns both and sums them.
    pub fn memory_used(&self) -> usize {
        self.decisions.memory_used()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &ChunkStats {
        &self.stats
    }

    /// Chunks pushed so far.
    pub fn chunks_pushed(&self) -> usize {
        self.chunks
    }

    /// Finish the run, returning the whole-stream summary.
    pub fn finish(self) -> StreamSummary {
        StreamSummary {
            target: self.program.target().clone(),
            chunks: self.chunks,
            stats: self.stats,
            evictions: self.evictions,
            peak_memory_bytes: self.peak_memory,
            degraded: false,
            decision_cache_hits: self.decisions.hits,
            decision_cache_misses: self.decisions.misses,
        }
    }
}

/// An owning columnar ingest stream: a persistent
/// [`ColumnInterner`](clx_column::ColumnInterner) plus the per-stream
/// execution state, bundled so callers can push raw string chunks and get
/// the full O(distinct) path without managing the interner themselves.
///
/// ```
/// use std::sync::Arc;
/// use clx_engine::{ColumnStream, CompiledProgram};
/// use clx_pattern::tokenize;
/// use clx_unifi::{Branch, Expr, Program, StringExpr};
///
/// let program = Program::new(vec![Branch::new(
///     tokenize("734.236.3466"),
///     Expr::concat(vec![
///         StringExpr::extract(1),
///         StringExpr::const_str("-"),
///         StringExpr::extract(3),
///         StringExpr::const_str("-"),
///         StringExpr::extract(5),
///     ]),
/// )]);
/// let compiled = CompiledProgram::compile(&program, &tokenize("734-422-8073")).unwrap();
///
/// let mut stream = ColumnStream::from_program(compiled);
/// let report = stream.push_rows(&["111.222.3333", "111.222.3333", "N/A"]);
/// assert_eq!(report.len(), 3);
/// assert_eq!(report.outcomes().len(), 2); // columnar: one per distinct
/// let summary = stream.finish();
/// assert_eq!(summary.rows(), 3);
/// ```
///
/// # Bounded streams for untrusted input
///
/// The interner and decision cache are O(distinct) — unbounded on
/// adversarial high-cardinality streams. [`ColumnStream::with_budget`]
/// caps them with a [`StreamBudget`]:
///
/// * under [`BudgetPolicy::Evict`](clx_column::BudgetPolicy::Evict) (the
///   default), each pushed chunk first evicts the coldest interned values
///   down to the budget — evicted values are re-interned (and re-decided)
///   if they reappear, so outcomes are row-for-row identical to the
///   unbounded stream, at bounded memory;
/// * under [`BudgetPolicy::Fallback`](clx_column::BudgetPolicy::Fallback),
///   the stream stops interning once over budget and degrades to the
///   per-row `&[String]` path — same outcomes, per-row reports, frozen
///   interner.
///
/// [`ColumnStream::memory_used`], [`ColumnStream::evictions`] and
/// [`ColumnStream::is_degraded`] expose the bounded-stream state; the
/// final [`StreamSummary`] records the eviction count and peak memory.
pub struct ColumnStream {
    program: Arc<CompiledProgram>,
    interner: ColumnInterner,
    cache: DispatchCache,
    decisions: DistinctDecisions,
    stats: ChunkStats,
    chunks: usize,
    /// `true` once a `Fallback`-policy stream exceeded its budget and
    /// switched to the per-row path.
    degraded: bool,
    /// Peak of [`ColumnStream::memory_used`] across the stream.
    peak_memory: usize,
    /// Optional metrics destination. `None` (the default) keeps every push
    /// clock-free and sink-free: per-chunk publishing is gated on one
    /// `Option` branch.
    telemetry: Option<Arc<dyn MetricSink>>,
    /// Dispatch-tier tallies already published to the sink (delta basis).
    published_dispatch: crate::dispatch::DispatchStats,
    /// Decision-cache tallies already published to the sink (delta basis).
    published_decisions: (u64, u64),
    /// Fused cold-path tallies already published to the sink (delta
    /// basis). The tallies live on the shared program, so a program
    /// driven by several streams attributes each delta to whichever
    /// stream publishes first — totals stay exact.
    published_fused: crate::compiled::FusedStats,
}

impl ColumnStream {
    /// Start a columnar stream over a shared compiled program, with no
    /// memory budget.
    pub fn new(program: Arc<CompiledProgram>) -> Self {
        Self::with_budget(program, StreamBudget::unbounded())
    }

    /// Start a columnar stream whose interned state is capped by `budget`
    /// (see the type-level *bounded streams* docs).
    pub fn with_budget(program: Arc<CompiledProgram>, budget: StreamBudget) -> Self {
        // Snapshot the shared program's tallies so this stream only
        // publishes decisions made after it was opened.
        let published_fused = program.fused_stats();
        ColumnStream {
            program,
            interner: ColumnInterner::with_budget(budget),
            cache: DispatchCache::new(),
            decisions: DistinctDecisions::default(),
            stats: ChunkStats::default(),
            chunks: 0,
            degraded: false,
            peak_memory: 0,
            telemetry: None,
            published_dispatch: crate::dispatch::DispatchStats::default(),
            published_decisions: (0, 0),
            published_fused,
        }
    }

    /// [`ColumnStream::new`] taking ownership of the program.
    pub fn from_program(program: CompiledProgram) -> Self {
        Self::new(Arc::new(program))
    }

    /// Attach a telemetry sink: every pushed chunk publishes
    /// `engine.stream.*` latency/throughput histograms,
    /// `engine.dispatch.*` tier counters and memory gauges, and the
    /// stream's interner publishes its `column.interner.*` series at each
    /// chunk boundary. Without this call the stream never reads a clock or
    /// touches a sink.
    pub fn with_telemetry(mut self, sink: Arc<dyn MetricSink>) -> Self {
        self.interner.attach_telemetry(Arc::clone(&sink));
        self.telemetry = Some(sink);
        self
    }

    /// The compiled program this stream executes.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The stream's persistent interner (distinct values and leaf patterns
    /// seen so far, with their dense ids).
    pub fn interner(&self) -> &ColumnInterner {
        &self.interner
    }

    /// The stream's dispatch cache (exposes the dense leaf-id tier via
    /// [`DispatchCache::dense_len`]).
    pub fn dispatch_cache(&self) -> &DispatchCache {
        &self.cache
    }

    /// Hot-swap the stream's program mid-stream, keeping everything the
    /// program change cannot invalidate.
    ///
    /// A [`ProgramDelta`] between the old and new program drives three
    /// incremental moves, none of which touches a row:
    ///
    /// * **decisions** — already-decided distincts whose outcome the delta
    ///   cannot prove stable are invalidated and re-decide *lazily*
    ///   (through the new program, via the usual generation machinery) on
    ///   the next chunk that contains them; everything else keeps
    ///   replaying its stored outcome.
    /// * **dispatch plans** — the dense leaf-id tier re-binds to the new
    ///   program *without a full reset*: plans for leaf-ids the delta
    ///   proves unaffected are retained as-is (see "Rebinding without a
    ///   reset" in the `dispatch` module docs); affected ones rebuild on
    ///   next sight. The hashed tier is filtered the same way.
    /// * **fused automaton** — the new program already carries its own,
    ///   built once at compile time; first-sight decisions after the swap
    ///   classify through it with no per-distinct rebuild cost. The
    ///   stream's fused-tally baseline re-snapshots so telemetry deltas
    ///   stay attributed correctly.
    ///
    /// Swapping in the same program (same `Arc` or a recompilation of an
    /// identical program) is a no-op beyond the delta check. Under a
    /// telemetry sink the swap publishes `engine.delta.branches_changed`
    /// and `engine.delta.distincts_redecided` (the lazily invalidated
    /// count). Cost: O(decided distincts + cached plans) cheap delta
    /// checks, independent of row count.
    pub fn swap_program(&mut self, new_program: Arc<CompiledProgram>) -> SwapSummary {
        if Arc::ptr_eq(&self.program, &new_program)
            || self.program.instance() == new_program.instance()
        {
            return SwapSummary::default();
        }
        let delta =
            ProgramDelta::between_observed(&self.program, &new_program, self.telemetry.as_ref());
        let distincts_invalidated = self.decisions.retain_unaffected(&delta);
        let interner = &self.interner;
        let (dense_plans_retained, dense_plans_dropped) = self.cache.rebind_retaining(
            new_program.instance(),
            |leaf| !delta.affects_leaf(leaf),
            |leaf_id| {
                interner
                    .leaf_pattern(leaf_id)
                    .is_some_and(|leaf| !delta.affects_leaf(leaf))
            },
        );
        if let Some(sink) = &self.telemetry {
            sink.counter(
                "engine.delta.distincts_redecided",
                distincts_invalidated as u64,
            );
        }
        // Re-baseline the fused tallies: they live on the program, and
        // this stream now publishes deltas of the new program's counters.
        self.published_fused = new_program.fused_stats();
        self.program = new_program;
        SwapSummary {
            branches_changed: delta.branches_changed(),
            target_changed: delta.target_changed(),
            distincts_invalidated,
            dense_plans_retained,
            dense_plans_dropped,
        }
    }

    /// Intern the next chunk of rows into the stream's id space and
    /// transform it, returning a columnar [`ChunkReport`]. Distinct values
    /// seen in earlier chunks keep their ids, so they are neither
    /// re-tokenized nor re-transformed.
    ///
    /// On a budgeted stream the interner enforces the budget at this chunk
    /// boundary first (under `Evict`), or the stream degrades to the
    /// per-row path once over budget (under `Fallback`); either way the
    /// report's rows are exactly the unbounded stream's.
    pub fn push_rows<S: AsRef<str>>(&mut self, rows: &[S]) -> ChunkReport {
        if self.degraded {
            return self.push_rows_degraded(rows);
        }
        // The only disabled-path cost of telemetry: this `is_some()`.
        let start = self.telemetry.is_some().then(Instant::now);
        // chunk() runs enforce_budget() before interning a single row.
        let chunk = self.interner.chunk(rows);
        let report = self.decisions.execute_chunk(
            &self.program,
            &mut self.cache,
            &chunk,
            self.chunks,
            self.telemetry.as_ref(),
        );
        drop(chunk);
        self.stats.absorb(&report.stats);
        self.chunks += 1;
        if self.interner.budget().policy == clx_column::BudgetPolicy::Fallback
            && self.interner.over_budget()
        {
            self.degraded = true;
        }
        self.peak_memory = self.peak_memory.max(self.memory_used());
        self.publish_chunk_metrics(rows.len(), start);
        report
    }

    /// The per-row path a `Fallback`-policy stream degrades to: nothing new
    /// is interned or cached per distinct value, so retained memory stops
    /// growing. Outcomes are identical ([`CompiledProgram::transform_one`]
    /// is the same pure function of the row text); the report is per-row
    /// rather than columnar.
    fn push_rows_degraded<S: AsRef<str>>(&mut self, rows: &[S]) -> ChunkReport {
        let start = self.telemetry.is_some().then(Instant::now);
        let outcomes: Vec<RowOutcome> = rows
            .iter()
            .map(|row| self.program.transform_one(&mut self.cache, row.as_ref()))
            .collect();
        let report = ChunkReport::new(self.chunks, outcomes);
        self.stats.absorb(&report.stats);
        self.chunks += 1;
        self.peak_memory = self.peak_memory.max(self.memory_used());
        self.publish_chunk_metrics(rows.len(), start);
        report
    }

    /// Publish the per-chunk telemetry series. `start` is `Some` exactly
    /// when a sink is attached, so the disabled path reduces to one failed
    /// pattern match — no clock read, no arithmetic.
    fn publish_chunk_metrics(&mut self, rows: usize, start: Option<Instant>) {
        let (Some(sink), Some(start)) = (&self.telemetry, start) else {
            return;
        };
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        sink.observe("engine.stream.chunk_ns", nanos);
        if rows > 0 && nanos > 0 {
            let rps = (rows as u128 * 1_000_000_000) / u128::from(nanos);
            sink.observe(
                "engine.stream.rows_per_sec",
                u64::try_from(rps).unwrap_or(u64::MAX),
            );
        }
        sink.counter("engine.stream.chunks", 1);
        sink.counter("engine.stream.rows", rows as u64);

        // Hot loops tally plain u64s; only the since-last-chunk deltas
        // touch the sink here.
        let decisions = (self.decisions.hits, self.decisions.misses);
        let (prev_hits, prev_misses) = self.published_decisions;
        sink.counter("engine.stream.decision_hits", decisions.0 - prev_hits);
        sink.counter("engine.stream.decision_misses", decisions.1 - prev_misses);
        self.published_decisions = decisions;

        let dispatch = self.cache.stats();
        let prev = self.published_dispatch;
        sink.counter(
            "engine.dispatch.dense_hits",
            dispatch.dense_hits - prev.dense_hits,
        );
        sink.counter(
            "engine.dispatch.dense_misses",
            dispatch.dense_misses - prev.dense_misses,
        );
        sink.counter(
            "engine.dispatch.hashed_hits",
            dispatch.hashed_hits - prev.hashed_hits,
        );
        sink.counter(
            "engine.dispatch.hashed_misses",
            dispatch.hashed_misses - prev.hashed_misses,
        );
        self.published_dispatch = dispatch;

        let fused = self.program.fused_stats();
        let prev = self.published_fused;
        sink.counter(
            "engine.fused.decisions",
            fused.fused_decisions - prev.fused_decisions,
        );
        sink.counter(
            "engine.fused.pike_vm_decisions",
            fused.pike_vm_decisions - prev.pike_vm_decisions,
        );
        sink.counter(
            "engine.fused.split_derived",
            fused.split_derived - prev.split_derived,
        );
        sink.counter(
            "engine.fused.split_fallbacks",
            fused.split_fallbacks - prev.split_fallbacks,
        );
        self.published_fused = fused;

        sink.gauge("engine.stream.memory_bytes", self.memory_used() as u64);
        sink.gauge("engine.stream.peak_memory_bytes", self.peak_memory as u64);
    }

    /// Distinct values decided and currently retained this stream.
    pub fn distinct_decided(&self) -> usize {
        self.decisions.len()
    }

    /// The stream's memory budget (unbounded unless constructed with
    /// [`ColumnStream::with_budget`]).
    pub fn budget(&self) -> &StreamBudget {
        self.interner.budget()
    }

    /// Estimated heap bytes retained by the stream's interner and
    /// per-distinct-id decision cache — the two O(distinct) structures a
    /// [`StreamBudget`] bounds. Monotone under pushes between evictions;
    /// decreases when an eviction batch runs.
    pub fn memory_used(&self) -> usize {
        self.interner.memory_used() + self.decisions.memory_used()
    }

    /// Distinct values evicted by the interner so far (always `0` for
    /// unbounded and `Fallback` streams).
    pub fn evictions(&self) -> u64 {
        self.interner.evictions()
    }

    /// `true` once a [`BudgetPolicy::Fallback`](clx_column::BudgetPolicy)
    /// stream has exceeded its budget and switched to the per-row path.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &ChunkStats {
        &self.stats
    }

    /// Chunks pushed so far.
    pub fn chunks_pushed(&self) -> usize {
        self.chunks
    }

    /// Finish the run, returning the whole-stream summary.
    pub fn finish(self) -> StreamSummary {
        StreamSummary {
            target: self.program.target().clone(),
            chunks: self.chunks,
            stats: self.stats,
            evictions: self.interner.evictions(),
            peak_memory_bytes: self.peak_memory,
            degraded: self.degraded,
            decision_cache_hits: self.decisions.hits,
            decision_cache_misses: self.decisions.misses,
        }
    }
}

/// What [`ColumnStream::swap_program`] kept and what it let go — the
/// incremental accounting of one mid-stream program hot-swap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapSummary {
    /// Changed branch slots in the old→new delta (after the
    /// facts intersection; see [`ProgramDelta::branches_changed`]).
    pub branches_changed: usize,
    /// `true` when the labelled target pattern changed (which invalidates
    /// every decision and plan).
    pub target_changed: bool,
    /// Stored distinct decisions invalidated for lazy re-decide; every
    /// other decided distinct keeps replaying its outcome.
    pub distincts_invalidated: usize,
    /// Dense dispatch plans proven still valid and retained as-is.
    pub dense_plans_retained: usize,
    /// Dense dispatch plans dropped for rebuild on next sight.
    pub dense_plans_dropped: usize,
}

/// The O(1)-sized result of a finished streaming run.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// The target pattern of the compiled program.
    pub target: Pattern,
    /// Number of chunks pushed.
    pub chunks: usize,
    /// Counters over every row pushed.
    pub stats: ChunkStats,
    /// Distinct values evicted under the stream's [`StreamBudget`] (`0`
    /// for unbounded streams; for a [`StreamSession`], the owning
    /// interner's count as of the last pushed chunk).
    pub evictions: u64,
    /// Peak estimated bytes retained by the stream's O(distinct) state
    /// (interner + decision cache) across the run.
    pub peak_memory_bytes: usize,
    /// `true` if a `Fallback`-policy stream exceeded its budget and
    /// finished on the per-row path.
    pub degraded: bool,
    /// Column-path decisions replayed from the per-distinct cache (`0`
    /// for pure `&[String]` streams). A repeated value costs a replay,
    /// not a transform — this over
    /// [`decision_cache_misses`](StreamSummary::decision_cache_misses)
    /// is the stream's headline reuse ratio.
    pub decision_cache_hits: u64,
    /// Column-path decisions that had to run the program (first sight of
    /// a distinct value, or re-decision after its slot was evicted).
    pub decision_cache_misses: u64,
}

impl StreamSummary {
    /// Total rows processed.
    pub fn rows(&self) -> usize {
        self.stats.rows()
    }

    /// Fraction of column-path decisions served from the per-distinct
    /// cache, in `[0, 1]`; 0 before any decision.
    pub fn decision_cache_hit_rate(&self) -> f64 {
        let total = self.decision_cache_hits + self.decision_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.decision_cache_hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::tokenize;
    use clx_unifi::{Branch, Expr, Program, StringExpr};

    fn compiled() -> CompiledProgram {
        let program = Program::new(vec![Branch::new(
            tokenize("734.236.3466"),
            Expr::concat(vec![
                StringExpr::extract(1),
                StringExpr::const_str("-"),
                StringExpr::extract(3),
                StringExpr::const_str("-"),
                StringExpr::extract(5),
            ]),
        )]);
        CompiledProgram::compile(&program, &tokenize("734-422-8073")).unwrap()
    }

    #[test]
    fn chunks_stream_through_without_whole_column_state() {
        let program = compiled();
        let mut stream = program.stream();
        let mut written: Vec<String> = Vec::new();
        for c in 0..10 {
            let chunk: Vec<String> = (0..100)
                .map(|i| match (c * 100 + i) % 3 {
                    0 => format!("{:03}.{:03}.{:04}", 100 + i, 200 + i, 4000 + i),
                    1 => format!("{:03}-{:03}-{:04}", 100 + i, 200 + i, 4000 + i),
                    _ => "???".to_string(),
                })
                .collect();
            let report = stream.push_chunk(&chunk);
            assert_eq!(report.index, c);
            assert_eq!(report.len(), 100);
            written.extend(report.iter_values().map(str::to_string));
        }
        assert_eq!(stream.chunks_pushed(), 10);
        let summary = stream.finish();
        assert_eq!(summary.chunks, 10);
        assert_eq!(summary.rows(), 1_000);
        assert_eq!(written.len(), 1_000);
        assert_eq!(
            summary.stats.transformed + summary.stats.conforming + summary.stats.flagged,
            1_000
        );
        assert!(summary.stats.flagged > 0 && summary.stats.transformed > 0);
    }

    #[test]
    fn streamed_outcomes_equal_one_shot_execution() {
        let program = compiled();
        let column: Vec<String> = (0..500)
            .map(|i| format!("{:03}.{:03}.{:04}", 100 + i % 800, 200 + i % 700, i))
            .collect();
        let one_shot = program.execute(&column);

        let mut stream = program.stream();
        let mut streamed = Vec::new();
        for chunk in column.chunks(77) {
            streamed.extend(stream.push_chunk(chunk).into_row_outcomes());
        }
        let summary = stream.finish();
        assert_eq!(streamed, one_shot.clone().into_row_outcomes());
        assert_eq!(summary.stats, one_shot.stats);
    }

    #[test]
    fn worker_caches_persist_across_chunks() {
        let program = compiled();
        let mut stream = program.stream_with(crate::ExecOptions {
            threads: 1,
            chunk_size: 0,
        });
        let rows: Vec<String> = (0..10).map(|i| format!("111.222.{:04}", i)).collect();
        stream.push_chunk(&rows);
        let decided_after_first = stream.caches[0].len();
        assert!(decided_after_first > 0);
        stream.push_chunk(&rows);
        // Same leaves in the second chunk: no new plans were built.
        assert_eq!(stream.caches[0].len(), decided_after_first);
    }

    #[test]
    fn empty_stream() {
        let program = compiled();
        let summary = program.stream().finish();
        assert_eq!(summary.chunks, 0);
        assert_eq!(summary.rows(), 0);
    }

    // ---- column path ------------------------------------------------------

    #[test]
    fn column_chunks_match_string_chunks_row_for_row() {
        let program = compiled();
        let rows: Vec<String> = (0..600)
            .map(|i| match i % 3 {
                0 => format!("{:03}.{:03}.{:04}", 100 + i % 7, 200 + i % 7, i % 7),
                1 => format!("{:03}-{:03}-{:04}", 100 + i % 7, 200 + i % 7, i % 7),
                _ => "N/A".to_string(),
            })
            .collect();

        let mut by_strings = program.stream();
        let mut by_columns = ColumnStream::from_program(compiled());
        for chunk in rows.chunks(128) {
            let s = by_strings.push_chunk(chunk);
            let c = by_columns.push_rows(chunk);
            assert!(c.is_columnar() && !s.is_columnar());
            assert_eq!(s.len(), c.len());
            assert_eq!(
                s.iter_rows().collect::<Vec<_>>(),
                c.iter_rows().collect::<Vec<_>>()
            );
            assert_eq!(s.stats, c.stats);
        }
        let s = by_strings.finish();
        let c = by_columns.finish();
        assert_eq!(s.stats, c.stats);
        assert_eq!(s.chunks, c.chunks);
    }

    #[test]
    fn cross_chunk_repeats_are_decided_once() {
        let program = compiled();
        let mut stream = ColumnStream::from_program(program);
        let first = stream.push_rows(&["111.222.3333", "444.555.6666", "111.222.3333"]);
        assert_eq!(first.outcomes().len(), 2);
        assert_eq!(stream.distinct_decided(), 2);
        assert_eq!(stream.interner().distinct_count(), 2);

        // The second chunk holds only repeats: no new decisions, no new
        // interned values — but the report still covers every row.
        let second = stream.push_rows(&["444.555.6666", "111.222.3333", "444.555.6666"]);
        assert_eq!(second.len(), 3);
        assert_eq!(second.outcomes().len(), 2);
        assert_eq!(stream.distinct_decided(), 2);
        assert_eq!(stream.interner().distinct_count(), 2);
        assert_eq!(
            second.iter_values().collect::<Vec<_>>(),
            vec!["444-555-6666", "111-222-3333", "444-555-6666"]
        );
    }

    #[test]
    fn column_path_never_hashes_a_pattern() {
        let program = compiled();
        let mut stream = ColumnStream::from_program(program);
        stream.push_rows(&["111.222.3333", "N/A", "777-888-9999"]);
        stream.push_rows(&["111.222.3333", "000.111.2222"]);
        // Three distinct leaves decided, all on the dense integer tier; the
        // hashed tier was never touched.
        assert_eq!(stream.dispatch_cache().dense_len(), 3);
        assert_eq!(stream.dispatch_cache().len(), 0);
    }

    #[test]
    fn push_column_chunk_with_external_interner() {
        let program = compiled();
        let mut interner = clx_column::ColumnInterner::new();
        let mut session = program.stream();
        let chunk = interner.chunk(&["111.222.3333", "111.222.3333"]);
        let report = session.push_column_chunk(&chunk);
        assert_eq!(report.len(), 2);
        assert_eq!(report.outcomes().len(), 1);
        assert_eq!(session.distinct_decided(), 1);
        drop(chunk);
        let chunk = interner.chunk(&["111.222.3333", "N/A"]);
        let report = session.push_column_chunk(&chunk);
        assert_eq!(report.stats.flagged, 1);
        assert_eq!(session.distinct_decided(), 2);
        let summary = session.finish();
        assert_eq!(summary.rows(), 4);
        assert_eq!(summary.chunks, 2);
    }

    // ---- bounded streams ---------------------------------------------------

    /// A workload with conforming, transformed and flagged rows, with
    /// enough cardinality to overflow small budgets and enough repetition
    /// to straddle chunk boundaries.
    fn mixed_rows(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| match i % 4 {
                0 => format!(
                    "{:03}.{:03}.{:04}",
                    100 + i % 23,
                    200 + i % 7,
                    3000 + i % 11
                ),
                1 => format!("{:03}-{:03}-{:04}", 100 + i % 5, 200 + i % 5, 4000 + i % 5),
                2 => "N/A".to_string(),
                _ => format!("{:03}.999.{:04}", i % 750, 9000 + i % 13),
            })
            .collect()
    }

    #[test]
    fn bounded_streams_match_unbounded_row_for_row() {
        let rows = mixed_rows(400);
        for budget in [
            StreamBudget::max_distinct(1),
            StreamBudget::max_distinct(7),
            StreamBudget::max_distinct(64).with_max_arena_bytes(256),
            StreamBudget::unbounded(),
            StreamBudget::max_distinct(5).fallback(),
        ] {
            let mut bounded = ColumnStream::with_budget(Arc::new(compiled()), budget);
            let mut unbounded = ColumnStream::from_program(compiled());
            for chunk in rows.chunks(37) {
                let b = bounded.push_rows(chunk);
                let u = unbounded.push_rows(chunk);
                assert_eq!(
                    b.iter_rows().collect::<Vec<_>>(),
                    u.iter_rows().collect::<Vec<_>>(),
                    "budget {budget:?} diverged"
                );
                assert_eq!(b.stats, u.stats);
            }
            let b = bounded.finish();
            let u = unbounded.finish();
            assert_eq!(b.stats, u.stats);
            assert_eq!(u.evictions, 0);
        }
    }

    #[test]
    fn evicting_stream_stays_within_budget_and_reports_stats() {
        let mut stream =
            ColumnStream::with_budget(Arc::new(compiled()), StreamBudget::max_distinct(8));
        for c in 0..20usize {
            let rows: Vec<String> = (0..32)
                .map(|i| format!("{:03}.{:03}.{:04}", c % 1000, i, (c * 32 + i) % 10_000))
                .collect();
            stream.push_rows(&rows);
            // Budget + the pinned chunk bound the live set at every boundary.
            assert!(stream.interner().live_distinct_count() <= 8 + 32);
            assert!(stream.distinct_decided() <= stream.interner().live_distinct_count());
        }
        assert!(stream.evictions() > 0);
        let summary = stream.finish();
        assert!(summary.evictions > 0);
        assert!(summary.peak_memory_bytes > 0);
        assert!(!summary.degraded);
    }

    #[test]
    fn column_stream_memory_is_monotone_and_drops_after_eviction() {
        let mut stream =
            ColumnStream::with_budget(Arc::new(compiled()), StreamBudget::max_distinct(16));
        let mut last = stream.memory_used();
        for c in 0..4 {
            let rows: Vec<String> = (0..4)
                .map(|i| format!("111.222.{:04}", c * 4 + i))
                .collect();
            stream.push_rows(&rows);
            let now = stream.memory_used();
            assert!(now >= last, "memory_used must be monotone under pushes");
            last = now;
        }
        // Blow past the budget, then push again: the boundary eviction
        // shrinks retained memory (interner *and* decision cache).
        let big: Vec<String> = (0..64).map(|i| format!("333.444.{:04}", i)).collect();
        stream.push_rows(&big);
        let peak = stream.memory_used();
        stream.push_rows(&["111.222.0000"]);
        assert!(stream.evictions() > 0);
        assert!(stream.memory_used() < peak);
    }

    #[test]
    fn fallback_stream_degrades_to_the_per_row_path() {
        let rows = mixed_rows(120);
        let mut bounded = ColumnStream::with_budget(
            Arc::new(compiled()),
            StreamBudget::max_distinct(10).fallback(),
        );
        let mut reference = ColumnStream::from_program(compiled());
        for chunk in rows.chunks(40) {
            let b = bounded.push_rows(chunk);
            let r = reference.push_rows(chunk);
            assert_eq!(
                b.iter_rows().collect::<Vec<_>>(),
                r.iter_rows().collect::<Vec<_>>()
            );
        }
        assert!(bounded.is_degraded());
        assert_eq!(bounded.evictions(), 0);
        // Degraded chunks are per-row, and the interner is frozen: memory
        // stops growing no matter how many fresh values stream in.
        let frozen = bounded.interner().live_distinct_count();
        let report = bounded.push_rows(&["555.666.7777"]);
        assert!(!report.is_columnar());
        assert_eq!(
            report.iter_values().collect::<Vec<_>>(),
            vec!["555-666-7777"]
        );
        assert_eq!(bounded.interner().live_distinct_count(), frozen);
        let summary = bounded.finish();
        assert!(summary.degraded);
    }

    #[test]
    fn session_tolerates_bounded_interner_evictions() {
        let program = compiled();
        let mut session = program.stream();
        let mut interner = clx_column::ColumnInterner::with_budget(StreamBudget::max_distinct(2));
        let chunk = interner.chunk(&["111.222.3333", "444.555.6666", "777.888.9999"]);
        let report = session.push_column_chunk(&chunk);
        assert_eq!(report.stats.transformed, 3);
        drop(chunk);
        assert_eq!(session.distinct_decided(), 3);
        assert!(session.memory_used() > 0);

        // The next boundary evicts the coldest value; the session prunes
        // its decision and re-decides on reappearance, identically.
        let chunk = interner.chunk(&["111.222.3333"]);
        let report = session.push_column_chunk(&chunk);
        assert_eq!(
            report.iter_values().collect::<Vec<_>>(),
            vec!["111-222-3333"]
        );
        drop(chunk);
        assert!(interner.evictions() > 0);
        assert!(session.distinct_decided() <= interner.live_distinct_count());
        let summary = session.finish();
        assert!(summary.evictions > 0);
        assert!(summary.peak_memory_bytes > 0);
    }

    #[test]
    fn summary_reports_decision_cache_hit_ratio() {
        let mut stream = ColumnStream::from_program(compiled());
        // Decisions are per distinct value per chunk (duplicates within a
        // chunk share one decision via the row map): both values are
        // misses in the first chunk, replays in the second and third.
        stream.push_rows(&["111.222.3333", "N/A", "111.222.3333"]);
        stream.push_rows(&["N/A", "111.222.3333", "N/A"]);
        stream.push_rows(&["N/A", "111.222.3333"]);
        let summary = stream.finish();
        assert_eq!(summary.decision_cache_misses, 2);
        assert_eq!(summary.decision_cache_hits, 4);
        assert!((summary.decision_cache_hit_rate() - 4.0 / 6.0).abs() < 1e-9);

        // The `&[String]` path never touches the decision cache.
        let program = compiled();
        let mut session = program.stream();
        session.push_chunk(&["111.222.3333".to_string()]);
        let summary = session.finish();
        assert_eq!(summary.decision_cache_hits, 0);
        assert_eq!(summary.decision_cache_misses, 0);
        assert_eq!(summary.decision_cache_hit_rate(), 0.0);
    }

    #[test]
    fn decision_counters_survive_eviction_prunes() {
        let mut stream =
            ColumnStream::with_budget(Arc::new(compiled()), StreamBudget::max_distinct(2));
        for c in 0..10usize {
            let rows: Vec<String> = (0..8).map(|i| format!("{:03}.222.{:04}", c, i)).collect();
            stream.push_rows(&rows);
        }
        assert!(stream.evictions() > 0);
        let summary = stream.finish();
        // 80 all-distinct rows: every decision was a first sight (or a
        // re-decision, still a miss); the tallies must not shrink when
        // the cache prunes evicted slots.
        assert_eq!(summary.decision_cache_misses, 80);
        assert_eq!(summary.decision_cache_hits, 0);
    }

    #[test]
    fn telemetry_sink_sees_per_chunk_series() {
        let sink = clx_telemetry::InMemorySink::shared();
        let mut stream =
            ColumnStream::with_budget(Arc::new(compiled()), StreamBudget::max_distinct(4))
                .with_telemetry(sink.clone());
        for c in 0..6usize {
            let rows: Vec<String> = (0..16)
                .map(|i| format!("{:03}.333.{:04}", c, i % 12))
                .collect();
            stream.push_rows(&rows);
        }
        let summary = stream.finish();

        let snap = MetricSink::snapshot(&*sink);
        assert_eq!(snap.counter("engine.stream.chunks"), Some(6));
        assert_eq!(snap.counter("engine.stream.rows"), Some(96));
        assert_eq!(
            snap.counter("engine.stream.decision_hits"),
            Some(summary.decision_cache_hits)
        );
        assert_eq!(
            snap.counter("engine.stream.decision_misses"),
            Some(summary.decision_cache_misses)
        );
        // The column path dispatches on the dense tier only, and the
        // sink's cumulative deltas must agree with the cache's tallies.
        assert_eq!(snap.counter("engine.dispatch.hashed_misses"), Some(0));
        assert!(snap.counter("engine.dispatch.dense_misses").unwrap() > 0);
        assert_eq!(snap.histogram("engine.stream.chunk_ns").unwrap().count, 6);
        assert_eq!(
            snap.histogram("engine.stream.rows_per_sec").unwrap().count,
            6
        );
        assert_eq!(
            snap.gauge("engine.stream.peak_memory_bytes"),
            Some(summary.peak_memory_bytes as u64)
        );
        // The interner published its own series at the chunk boundaries.
        assert_eq!(
            snap.counter("column.interner.evicted_values"),
            Some(summary.evictions)
        );
        assert!(snap.gauge("column.interner.arena_bytes").is_some());
        // Every dense-tier miss builds a plan — a cold decision — and this
        // program's leaves all fuse: the published fused tally must cover
        // exactly those builds, with the per-branch loop never consulted.
        assert_eq!(
            snap.counter("engine.fused.decisions"),
            snap.counter("engine.dispatch.dense_misses")
        );
        assert_eq!(snap.counter("engine.fused.pike_vm_decisions"), Some(0));
        assert!(snap.histogram("engine.fused.decide_ns").unwrap().count > 0);
    }

    #[test]
    fn fused_streams_derive_every_split_from_the_accepting_path() {
        let sink = clx_telemetry::InMemorySink::shared();
        let mut stream =
            ColumnStream::with_budget(Arc::new(compiled()), StreamBudget::max_distinct(4))
                .with_telemetry(sink.clone());
        // Every row matches the branch, and evictions force re-decisions,
        // so each cold decision builds an Apply plan through the fused
        // automaton.
        for c in 0..6usize {
            let rows: Vec<String> = (0..16)
                .map(|i| format!("{:03}.333.{:04}", c, i % 12))
                .collect();
            stream.push_rows(&rows);
        }
        stream.finish();

        let snap = MetricSink::snapshot(&*sink);
        // Single-pass first sight: every cold branch decision derived its
        // split boundaries from the automaton's accepting path — zero
        // `Pattern::split` runs anywhere on the fused path.
        let decisions = snap.counter("engine.fused.decisions").unwrap();
        assert!(decisions > 0);
        assert_eq!(snap.counter("engine.fused.split_derived"), Some(decisions));
        assert_eq!(snap.counter("engine.fused.split_fallbacks"), Some(0));
        assert_eq!(
            snap.histogram("engine.fused.split_ns").unwrap().count,
            decisions
        );
    }

    #[test]
    fn streams_with_and_without_telemetry_are_byte_identical() {
        let rows = mixed_rows(300);
        let sink = clx_telemetry::InMemorySink::shared();
        let budget = StreamBudget::max_distinct(8);
        let mut plain = ColumnStream::with_budget(Arc::new(compiled()), budget);
        let mut noop = ColumnStream::with_budget(Arc::new(compiled()), budget)
            .with_telemetry(Arc::new(clx_telemetry::NoopSink::new()));
        let mut live = ColumnStream::with_budget(Arc::new(compiled()), budget).with_telemetry(sink);
        for chunk in rows.chunks(50) {
            let p = plain.push_rows(chunk);
            let n = noop.push_rows(chunk);
            let l = live.push_rows(chunk);
            assert_eq!(
                p.iter_rows().collect::<Vec<_>>(),
                n.iter_rows().collect::<Vec<_>>()
            );
            assert_eq!(
                p.iter_rows().collect::<Vec<_>>(),
                l.iter_rows().collect::<Vec<_>>()
            );
        }
        let p = plain.finish();
        let n = noop.finish();
        let l = live.finish();
        assert_eq!(p.stats, n.stats);
        assert_eq!(p.stats, l.stats);
        assert_eq!(p.evictions, n.evictions);
        assert_eq!(p.evictions, l.evictions);
    }

    #[test]
    fn switching_interners_resets_the_decision_cache() {
        let program = compiled();
        let mut session = program.stream();
        let mut a = clx_column::ColumnInterner::new();
        let chunk = a.chunk(&["111.222.3333"]);
        session.push_column_chunk(&chunk);
        assert_eq!(session.distinct_decided(), 1);

        // A chunk from a different interner carries ids from a different id
        // space; the per-id decision cache must not alias them.
        let mut b = clx_column::ColumnInterner::new();
        let chunk = b.chunk(&["N/A", "N/A"]);
        let report = session.push_column_chunk(&chunk);
        assert_eq!(report.stats.flagged, 2);
        assert_eq!(session.distinct_decided(), 1);
    }

    /// Two transparent branches over disjoint leaves, so a repair to one
    /// provably leaves the other branch's distincts and plans alone.
    fn two_branch_program(digit_suffix: &str) -> CompiledProgram {
        let digits = clx_pattern::parse_pattern("<D>2'-'<D>2").unwrap();
        let letters = clx_pattern::parse_pattern("<L>+'.'<L>+").unwrap();
        let program = Program::new(vec![
            Branch::new(
                digits,
                Expr::concat(vec![
                    StringExpr::extract(1),
                    StringExpr::extract(3),
                    StringExpr::const_str(digit_suffix),
                ]),
            ),
            Branch::new(
                letters,
                Expr::concat(vec![StringExpr::extract(1), StringExpr::extract(3)]),
            ),
        ]);
        // `<AN>4` conforms to the branch *outputs* ("1234", "abcd") but not
        // to the inputs ("-" and "." keep them off-target), so both
        // branches genuinely fire.
        CompiledProgram::compile(&program, &clx_pattern::parse_pattern("<AN>4").unwrap()).unwrap()
    }

    #[test]
    fn swap_program_keeps_unaffected_decisions_and_dense_plans() {
        let mut stream = ColumnStream::new(Arc::new(two_branch_program("")));
        let rows = ["12-34", "56-78", "ab.cd", "ef.gh"];
        stream.push_rows(&rows);
        assert_eq!(stream.distinct_decided(), 4);
        let dense_before = stream.dispatch_cache().dense_len();
        assert_eq!(dense_before, 2, "one dense plan per leaf");

        let swap = stream.swap_program(Arc::new(two_branch_program("#")));
        assert_eq!(swap.branches_changed, 2, "old + new form of one branch");
        assert!(!swap.target_changed);
        assert_eq!(
            swap.distincts_invalidated, 2,
            "only the digit distincts re-decide"
        );
        assert_eq!(swap.dense_plans_retained, 1, "letters leaf plan survives");
        assert_eq!(swap.dense_plans_dropped, 1);
        assert_eq!(stream.distinct_decided(), 2);

        // Replaying the same rows re-decides exactly the invalidated ids,
        // through the new program — and matches a fresh stream of it.
        let patched = stream.push_rows(&rows);
        let mut fresh = ColumnStream::new(Arc::new(two_branch_program("#")));
        let expected = fresh.push_rows(&rows);
        assert_eq!(
            patched.iter_rows().collect::<Vec<_>>(),
            expected.iter_rows().collect::<Vec<_>>()
        );
        assert!(
            patched.iter_values().any(|v| v == "1234#"),
            "new plan's output visible post-swap"
        );
    }

    #[test]
    fn swap_program_with_identical_program_is_a_no_op() {
        let mut stream = ColumnStream::new(Arc::new(two_branch_program("")));
        stream.push_rows(&["12-34", "ab.cd"]);
        let decided = stream.distinct_decided();
        // A recompilation of the same source program: new instance, no
        // semantic change — the delta proves everything stable.
        let swap = stream.swap_program(Arc::new(two_branch_program("")));
        assert_eq!(swap.branches_changed, 0);
        assert_eq!(swap.distincts_invalidated, 0);
        assert_eq!(swap.dense_plans_dropped, 0);
        assert_eq!(swap.dense_plans_retained, 2);
        assert_eq!(stream.distinct_decided(), decided);
        assert_eq!(stream.dispatch_cache().dense_len(), 2);
    }

    #[test]
    fn swap_program_target_change_invalidates_everything() {
        let mut stream = ColumnStream::new(Arc::new(two_branch_program("")));
        stream.push_rows(&["12-34", "ab.cd"]);
        let digits = clx_pattern::parse_pattern("<D>2'-'<D>2").unwrap();
        let retarget = CompiledProgram::compile(
            &Program::new(vec![Branch::new(
                digits,
                Expr::concat(vec![StringExpr::extract(1), StringExpr::extract(3)]),
            )]),
            &clx_pattern::parse_pattern("<D>+").unwrap(),
        )
        .unwrap();
        let swap = stream.swap_program(Arc::new(retarget));
        assert!(swap.target_changed);
        assert_eq!(swap.distincts_invalidated, 2);
        assert_eq!(swap.dense_plans_retained, 0);
        assert_eq!(stream.distinct_decided(), 0);
        // Post-swap pushes equal a fresh stream of the new program.
        let report = stream.push_rows(&["12-34", "ab.cd"]);
        assert_eq!(report.stats.transformed, 1);
        assert_eq!(report.stats.flagged, 1);
    }

    #[test]
    fn swap_program_under_eviction_stays_row_for_row_correct() {
        let budget = StreamBudget::max_distinct(2);
        let mut stream = ColumnStream::with_budget(Arc::new(two_branch_program("")), budget);
        let rows: Vec<String> = (0..40)
            .map(|i| match i % 4 {
                0 => format!("{:02}-{:02}", 10 + (i % 50), 10 + (i % 50)),
                1 => "ab.cd".to_string(),
                2 => "ef.gh".to_string(),
                _ => "???".to_string(),
            })
            .collect();
        stream.push_rows(&rows[..20]);
        stream.swap_program(Arc::new(two_branch_program("#")));
        let patched = stream.push_rows(&rows[20..]);
        let mut fresh = ColumnStream::new(Arc::new(two_branch_program("#")));
        let expected = fresh.push_rows(&rows[20..]);
        assert_eq!(
            patched.iter_rows().collect::<Vec<_>>(),
            expected.iter_rows().collect::<Vec<_>>()
        );
    }
}
