//! Streaming execution for columns larger than memory.
//!
//! Two ingest paths share the machinery here:
//!
//! * [`StreamSession::push_chunk`] takes `&[String]`, re-tokenizing every
//!   row to dispatch it — the zero-setup path for callers that only hold
//!   raw strings;
//! * [`StreamSession::push_column_chunk`] takes a
//!   [`ColumnChunk`](clx_column::ColumnChunk) interned through a persistent
//!   [`ColumnInterner`](clx_column::ColumnInterner), so streaming inherits
//!   the whole O(distinct) column path: a distinct value is tokenized once
//!   per *stream* (by the interner), decided once per stream (the session
//!   caches the outcome per distinct-id), and dispatched by integer leaf-id
//!   (a dense array index — no `Pattern` hashing). [`ColumnStream`] bundles
//!   the interner and a session into one owning handle.
//!
//! Either way each pushed chunk is transformed and *returned* to the caller
//! — to be written to a sink immediately — while the session retains only
//! mergeable counters plus (on the column path) the O(distinct) per-id
//! decision cache.

use std::sync::Arc;

use clx_column::{ColumnChunk, ColumnInterner};
use clx_pattern::Pattern;

use crate::compiled::CompiledProgram;
use crate::dispatch::DispatchCache;
use crate::parallel::ExecOptions;
use crate::report::{ChunkReport, ChunkStats, RowOutcome};

/// The per-stream cache of distinct-value decisions, indexed by the
/// interner's dense distinct-ids.
///
/// A value repeated across chunks is transformed exactly once per stream;
/// every later chunk containing it replays the stored outcome. The cache is
/// bound to the interner instance whose ids index it and resets if a chunk
/// from a different interner appears.
#[derive(Debug, Default)]
struct DistinctDecisions {
    source: Option<u64>,
    decided: Vec<Option<RowOutcome>>,
    /// Number of `Some` entries in `decided`.
    count: usize,
}

impl DistinctDecisions {
    /// Decisions made so far (distinct values transformed this stream).
    fn len(&self) -> usize {
        self.count
    }

    /// Execute one interned chunk, reusing stored decisions for already-seen
    /// distinct-ids and recording new ones.
    fn execute_chunk(
        &mut self,
        program: &CompiledProgram,
        cache: &mut DispatchCache,
        chunk: &ColumnChunk<'_>,
        index: usize,
    ) -> ChunkReport {
        let interner = chunk.interner();
        if self.source != Some(interner.instance()) {
            self.decided.clear();
            self.count = 0;
            self.source = Some(interner.instance());
        }
        if self.decided.len() < interner.distinct_count() {
            self.decided.resize(interner.distinct_count(), None);
        }
        let outcomes: Vec<RowOutcome> = chunk
            .distinct_ids()
            .iter()
            .map(|&id| {
                if let Some(outcome) = &self.decided[id as usize] {
                    return outcome.clone();
                }
                let outcome = program.transform_one_by_leaf_id(
                    cache,
                    interner.instance(),
                    interner.leaf_id(id),
                    interner.value(id),
                    interner.leaf(id),
                );
                self.decided[id as usize] = Some(outcome.clone());
                self.count += 1;
                outcome
            })
            .collect();
        ChunkReport::columnar(index, outcomes, chunk.row_map().to_vec())
    }
}

/// An in-progress streaming run over one compiled program.
///
/// The session owns its workers' dispatch caches and its per-distinct-id
/// decision cache, so leaf decisions *and* per-value outcomes made in one
/// pushed chunk are reused by every later chunk of the stream.
pub struct StreamSession<'p> {
    program: &'p CompiledProgram,
    options: ExecOptions,
    caches: Vec<DispatchCache>,
    decisions: DistinctDecisions,
    stats: ChunkStats,
    chunks: usize,
}

impl CompiledProgram {
    /// Start a streaming run with default execution options.
    pub fn stream(&self) -> StreamSession<'_> {
        self.stream_with(ExecOptions::default())
    }

    /// Start a streaming run with explicit execution options.
    pub fn stream_with(&self, options: ExecOptions) -> StreamSession<'_> {
        StreamSession {
            program: self,
            options,
            caches: Vec::new(),
            decisions: DistinctDecisions::default(),
            stats: ChunkStats::default(),
            chunks: 0,
        }
    }
}

impl StreamSession<'_> {
    /// Transform the next chunk of the column and hand its rows back to the
    /// caller. Only the counters are retained by the session.
    ///
    /// Every row is re-tokenized to dispatch it; callers that can intern
    /// their chunks through a persistent
    /// [`ColumnInterner`](clx_column::ColumnInterner) should push
    /// [`StreamSession::push_column_chunk`] (or use [`ColumnStream`])
    /// instead and skip that work entirely.
    pub fn push_chunk(&mut self, rows: &[String]) -> ChunkReport {
        let batch = self
            .program
            .execute_pooled(rows, self.options, &mut self.caches);
        let stats = batch.stats;
        let report =
            ChunkReport::from_rows_with_stats(self.chunks, batch.into_row_outcomes(), stats);
        self.stats.absorb(&report.stats);
        self.chunks += 1;
        report
    }

    /// Transform the next chunk of an *interned* stream: each distinct-id
    /// appearing in the chunk is decided at most once per stream (cached
    /// outcomes replay for ids seen in earlier chunks), dispatch runs on
    /// the dense leaf-id tier of the [`DispatchCache`], and the returned
    /// [`ChunkReport`] is columnar — one stored outcome per distinct value
    /// in the chunk, sharing the chunk's row map shape.
    ///
    /// The rows the report describes are exactly what
    /// [`StreamSession::push_chunk`] would produce for the same text; the
    /// session's counters absorb the chunk either way.
    pub fn push_column_chunk(&mut self, chunk: &ColumnChunk<'_>) -> ChunkReport {
        if self.caches.is_empty() {
            self.caches.push(DispatchCache::new());
        }
        let report =
            self.decisions
                .execute_chunk(self.program, &mut self.caches[0], chunk, self.chunks);
        self.stats.absorb(&report.stats);
        self.chunks += 1;
        report
    }

    /// Distinct values decided so far on the column path (the size of the
    /// per-stream outcome cache; `0` for pure `&[String]` streams).
    pub fn distinct_decided(&self) -> usize {
        self.decisions.len()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &ChunkStats {
        &self.stats
    }

    /// Chunks pushed so far.
    pub fn chunks_pushed(&self) -> usize {
        self.chunks
    }

    /// Finish the run, returning the whole-stream summary.
    pub fn finish(self) -> StreamSummary {
        StreamSummary {
            target: self.program.target().clone(),
            chunks: self.chunks,
            stats: self.stats,
        }
    }
}

/// An owning columnar ingest stream: a persistent
/// [`ColumnInterner`](clx_column::ColumnInterner) plus the per-stream
/// execution state, bundled so callers can push raw string chunks and get
/// the full O(distinct) path without managing the interner themselves.
///
/// ```
/// use std::sync::Arc;
/// use clx_engine::{ColumnStream, CompiledProgram};
/// use clx_pattern::tokenize;
/// use clx_unifi::{Branch, Expr, Program, StringExpr};
///
/// let program = Program::new(vec![Branch::new(
///     tokenize("734.236.3466"),
///     Expr::concat(vec![
///         StringExpr::extract(1),
///         StringExpr::const_str("-"),
///         StringExpr::extract(3),
///         StringExpr::const_str("-"),
///         StringExpr::extract(5),
///     ]),
/// )]);
/// let compiled = CompiledProgram::compile(&program, &tokenize("734-422-8073")).unwrap();
///
/// let mut stream = ColumnStream::from_program(compiled);
/// let report = stream.push_rows(&["111.222.3333", "111.222.3333", "N/A"]);
/// assert_eq!(report.len(), 3);
/// assert_eq!(report.outcomes().len(), 2); // columnar: one per distinct
/// let summary = stream.finish();
/// assert_eq!(summary.rows(), 3);
/// ```
pub struct ColumnStream {
    program: Arc<CompiledProgram>,
    interner: ColumnInterner,
    cache: DispatchCache,
    decisions: DistinctDecisions,
    stats: ChunkStats,
    chunks: usize,
}

impl ColumnStream {
    /// Start a columnar stream over a shared compiled program.
    pub fn new(program: Arc<CompiledProgram>) -> Self {
        ColumnStream {
            program,
            interner: ColumnInterner::new(),
            cache: DispatchCache::new(),
            decisions: DistinctDecisions::default(),
            stats: ChunkStats::default(),
            chunks: 0,
        }
    }

    /// [`ColumnStream::new`] taking ownership of the program.
    pub fn from_program(program: CompiledProgram) -> Self {
        Self::new(Arc::new(program))
    }

    /// The compiled program this stream executes.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The stream's persistent interner (distinct values and leaf patterns
    /// seen so far, with their dense ids).
    pub fn interner(&self) -> &ColumnInterner {
        &self.interner
    }

    /// The stream's dispatch cache (exposes the dense leaf-id tier via
    /// [`DispatchCache::dense_len`]).
    pub fn dispatch_cache(&self) -> &DispatchCache {
        &self.cache
    }

    /// Intern the next chunk of rows into the stream's id space and
    /// transform it, returning a columnar [`ChunkReport`]. Distinct values
    /// seen in earlier chunks keep their ids, so they are neither
    /// re-tokenized nor re-transformed.
    pub fn push_rows<S: AsRef<str>>(&mut self, rows: &[S]) -> ChunkReport {
        let chunk = self.interner.chunk(rows);
        let report =
            self.decisions
                .execute_chunk(&self.program, &mut self.cache, &chunk, self.chunks);
        self.stats.absorb(&report.stats);
        self.chunks += 1;
        report
    }

    /// Distinct values decided so far this stream.
    pub fn distinct_decided(&self) -> usize {
        self.decisions.len()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &ChunkStats {
        &self.stats
    }

    /// Chunks pushed so far.
    pub fn chunks_pushed(&self) -> usize {
        self.chunks
    }

    /// Finish the run, returning the whole-stream summary.
    pub fn finish(self) -> StreamSummary {
        StreamSummary {
            target: self.program.target().clone(),
            chunks: self.chunks,
            stats: self.stats,
        }
    }
}

/// The O(1)-sized result of a finished streaming run.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// The target pattern of the compiled program.
    pub target: Pattern,
    /// Number of chunks pushed.
    pub chunks: usize,
    /// Counters over every row pushed.
    pub stats: ChunkStats,
}

impl StreamSummary {
    /// Total rows processed.
    pub fn rows(&self) -> usize {
        self.stats.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::tokenize;
    use clx_unifi::{Branch, Expr, Program, StringExpr};

    fn compiled() -> CompiledProgram {
        let program = Program::new(vec![Branch::new(
            tokenize("734.236.3466"),
            Expr::concat(vec![
                StringExpr::extract(1),
                StringExpr::const_str("-"),
                StringExpr::extract(3),
                StringExpr::const_str("-"),
                StringExpr::extract(5),
            ]),
        )]);
        CompiledProgram::compile(&program, &tokenize("734-422-8073")).unwrap()
    }

    #[test]
    fn chunks_stream_through_without_whole_column_state() {
        let program = compiled();
        let mut stream = program.stream();
        let mut written: Vec<String> = Vec::new();
        for c in 0..10 {
            let chunk: Vec<String> = (0..100)
                .map(|i| match (c * 100 + i) % 3 {
                    0 => format!("{:03}.{:03}.{:04}", 100 + i, 200 + i, 4000 + i),
                    1 => format!("{:03}-{:03}-{:04}", 100 + i, 200 + i, 4000 + i),
                    _ => "???".to_string(),
                })
                .collect();
            let report = stream.push_chunk(&chunk);
            assert_eq!(report.index, c);
            assert_eq!(report.len(), 100);
            written.extend(report.iter_values().map(str::to_string));
        }
        assert_eq!(stream.chunks_pushed(), 10);
        let summary = stream.finish();
        assert_eq!(summary.chunks, 10);
        assert_eq!(summary.rows(), 1_000);
        assert_eq!(written.len(), 1_000);
        assert_eq!(
            summary.stats.transformed + summary.stats.conforming + summary.stats.flagged,
            1_000
        );
        assert!(summary.stats.flagged > 0 && summary.stats.transformed > 0);
    }

    #[test]
    fn streamed_outcomes_equal_one_shot_execution() {
        let program = compiled();
        let column: Vec<String> = (0..500)
            .map(|i| format!("{:03}.{:03}.{:04}", 100 + i % 800, 200 + i % 700, i))
            .collect();
        let one_shot = program.execute(&column);

        let mut stream = program.stream();
        let mut streamed = Vec::new();
        for chunk in column.chunks(77) {
            streamed.extend(stream.push_chunk(chunk).into_row_outcomes());
        }
        let summary = stream.finish();
        assert_eq!(streamed, one_shot.clone().into_row_outcomes());
        assert_eq!(summary.stats, one_shot.stats);
    }

    #[test]
    fn worker_caches_persist_across_chunks() {
        let program = compiled();
        let mut stream = program.stream_with(crate::ExecOptions {
            threads: 1,
            chunk_size: 0,
        });
        let rows: Vec<String> = (0..10).map(|i| format!("111.222.{:04}", i)).collect();
        stream.push_chunk(&rows);
        let decided_after_first = stream.caches[0].len();
        assert!(decided_after_first > 0);
        stream.push_chunk(&rows);
        // Same leaves in the second chunk: no new plans were built.
        assert_eq!(stream.caches[0].len(), decided_after_first);
    }

    #[test]
    fn empty_stream() {
        let program = compiled();
        let summary = program.stream().finish();
        assert_eq!(summary.chunks, 0);
        assert_eq!(summary.rows(), 0);
    }

    // ---- column path ------------------------------------------------------

    #[test]
    fn column_chunks_match_string_chunks_row_for_row() {
        let program = compiled();
        let rows: Vec<String> = (0..600)
            .map(|i| match i % 3 {
                0 => format!("{:03}.{:03}.{:04}", 100 + i % 7, 200 + i % 7, i % 7),
                1 => format!("{:03}-{:03}-{:04}", 100 + i % 7, 200 + i % 7, i % 7),
                _ => "N/A".to_string(),
            })
            .collect();

        let mut by_strings = program.stream();
        let mut by_columns = ColumnStream::from_program(compiled());
        for chunk in rows.chunks(128) {
            let s = by_strings.push_chunk(chunk);
            let c = by_columns.push_rows(chunk);
            assert!(c.is_columnar() && !s.is_columnar());
            assert_eq!(s.len(), c.len());
            assert_eq!(
                s.iter_rows().collect::<Vec<_>>(),
                c.iter_rows().collect::<Vec<_>>()
            );
            assert_eq!(s.stats, c.stats);
        }
        let s = by_strings.finish();
        let c = by_columns.finish();
        assert_eq!(s.stats, c.stats);
        assert_eq!(s.chunks, c.chunks);
    }

    #[test]
    fn cross_chunk_repeats_are_decided_once() {
        let program = compiled();
        let mut stream = ColumnStream::from_program(program);
        let first = stream.push_rows(&["111.222.3333", "444.555.6666", "111.222.3333"]);
        assert_eq!(first.outcomes().len(), 2);
        assert_eq!(stream.distinct_decided(), 2);
        assert_eq!(stream.interner().distinct_count(), 2);

        // The second chunk holds only repeats: no new decisions, no new
        // interned values — but the report still covers every row.
        let second = stream.push_rows(&["444.555.6666", "111.222.3333", "444.555.6666"]);
        assert_eq!(second.len(), 3);
        assert_eq!(second.outcomes().len(), 2);
        assert_eq!(stream.distinct_decided(), 2);
        assert_eq!(stream.interner().distinct_count(), 2);
        assert_eq!(
            second.iter_values().collect::<Vec<_>>(),
            vec!["444-555-6666", "111-222-3333", "444-555-6666"]
        );
    }

    #[test]
    fn column_path_never_hashes_a_pattern() {
        let program = compiled();
        let mut stream = ColumnStream::from_program(program);
        stream.push_rows(&["111.222.3333", "N/A", "777-888-9999"]);
        stream.push_rows(&["111.222.3333", "000.111.2222"]);
        // Three distinct leaves decided, all on the dense integer tier; the
        // hashed tier was never touched.
        assert_eq!(stream.dispatch_cache().dense_len(), 3);
        assert_eq!(stream.dispatch_cache().len(), 0);
    }

    #[test]
    fn push_column_chunk_with_external_interner() {
        let program = compiled();
        let mut interner = clx_column::ColumnInterner::new();
        let mut session = program.stream();
        let chunk = interner.chunk(&["111.222.3333", "111.222.3333"]);
        let report = session.push_column_chunk(&chunk);
        assert_eq!(report.len(), 2);
        assert_eq!(report.outcomes().len(), 1);
        assert_eq!(session.distinct_decided(), 1);
        drop(chunk);
        let chunk = interner.chunk(&["111.222.3333", "N/A"]);
        let report = session.push_column_chunk(&chunk);
        assert_eq!(report.stats.flagged, 1);
        assert_eq!(session.distinct_decided(), 2);
        let summary = session.finish();
        assert_eq!(summary.rows(), 4);
        assert_eq!(summary.chunks, 2);
    }

    #[test]
    fn switching_interners_resets_the_decision_cache() {
        let program = compiled();
        let mut session = program.stream();
        let mut a = clx_column::ColumnInterner::new();
        let chunk = a.chunk(&["111.222.3333"]);
        session.push_column_chunk(&chunk);
        assert_eq!(session.distinct_decided(), 1);

        // A chunk from a different interner carries ids from a different id
        // space; the per-id decision cache must not alias them.
        let mut b = clx_column::ColumnInterner::new();
        let chunk = b.chunk(&["N/A", "N/A"]);
        let report = session.push_column_chunk(&chunk);
        assert_eq!(report.stats.flagged, 2);
        assert_eq!(session.distinct_decided(), 1);
    }
}
