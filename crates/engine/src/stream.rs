//! Streaming execution for columns larger than memory.
//!
//! [`StreamSession::push_chunk`] transforms one chunk (in parallel) and
//! *returns* its rows to the caller — to be written to a sink immediately —
//! while the session itself retains only O(1) mergeable counters. A column
//! of any size can therefore be processed with memory proportional to one
//! chunk.

use clx_pattern::Pattern;

use crate::compiled::CompiledProgram;
use crate::dispatch::DispatchCache;
use crate::parallel::ExecOptions;
use crate::report::{ChunkReport, ChunkStats};

/// An in-progress streaming run over one compiled program.
///
/// The session owns its workers' dispatch caches, so leaf decisions made in
/// one pushed chunk are reused by every later chunk of the stream.
pub struct StreamSession<'p> {
    program: &'p CompiledProgram,
    options: ExecOptions,
    caches: Vec<DispatchCache>,
    stats: ChunkStats,
    chunks: usize,
}

impl CompiledProgram {
    /// Start a streaming run with default execution options.
    pub fn stream(&self) -> StreamSession<'_> {
        self.stream_with(ExecOptions::default())
    }

    /// Start a streaming run with explicit execution options.
    pub fn stream_with(&self, options: ExecOptions) -> StreamSession<'_> {
        StreamSession {
            program: self,
            options,
            caches: Vec::new(),
            stats: ChunkStats::default(),
            chunks: 0,
        }
    }
}

impl StreamSession<'_> {
    /// Transform the next chunk of the column and hand its rows back to the
    /// caller. Only the counters are retained by the session.
    pub fn push_chunk(&mut self, rows: &[String]) -> ChunkReport {
        let batch = self
            .program
            .execute_pooled(rows, self.options, &mut self.caches);
        let stats = batch.stats;
        let report = ChunkReport {
            index: self.chunks,
            rows: batch.into_row_outcomes(),
            stats,
        };
        self.stats.absorb(&report.stats);
        self.chunks += 1;
        report
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &ChunkStats {
        &self.stats
    }

    /// Chunks pushed so far.
    pub fn chunks_pushed(&self) -> usize {
        self.chunks
    }

    /// Finish the run, returning the whole-stream summary.
    pub fn finish(self) -> StreamSummary {
        StreamSummary {
            target: self.program.target().clone(),
            chunks: self.chunks,
            stats: self.stats,
        }
    }
}

/// The O(1)-sized result of a finished streaming run.
#[derive(Debug, Clone)]
pub struct StreamSummary {
    /// The target pattern of the compiled program.
    pub target: Pattern,
    /// Number of chunks pushed.
    pub chunks: usize,
    /// Counters over every row pushed.
    pub stats: ChunkStats,
}

impl StreamSummary {
    /// Total rows processed.
    pub fn rows(&self) -> usize {
        self.stats.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::tokenize;
    use clx_unifi::{Branch, Expr, Program, StringExpr};

    fn compiled() -> CompiledProgram {
        let program = Program::new(vec![Branch::new(
            tokenize("734.236.3466"),
            Expr::concat(vec![
                StringExpr::extract(1),
                StringExpr::const_str("-"),
                StringExpr::extract(3),
                StringExpr::const_str("-"),
                StringExpr::extract(5),
            ]),
        )]);
        CompiledProgram::compile(&program, &tokenize("734-422-8073")).unwrap()
    }

    #[test]
    fn chunks_stream_through_without_whole_column_state() {
        let program = compiled();
        let mut stream = program.stream();
        let mut written: Vec<String> = Vec::new();
        for c in 0..10 {
            let chunk: Vec<String> = (0..100)
                .map(|i| match (c * 100 + i) % 3 {
                    0 => format!("{:03}.{:03}.{:04}", 100 + i, 200 + i, 4000 + i),
                    1 => format!("{:03}-{:03}-{:04}", 100 + i, 200 + i, 4000 + i),
                    _ => "???".to_string(),
                })
                .collect();
            let report = stream.push_chunk(&chunk);
            assert_eq!(report.index, c);
            assert_eq!(report.rows.len(), 100);
            written.extend(report.rows.iter().map(|r| r.value().to_string()));
        }
        assert_eq!(stream.chunks_pushed(), 10);
        let summary = stream.finish();
        assert_eq!(summary.chunks, 10);
        assert_eq!(summary.rows(), 1_000);
        assert_eq!(written.len(), 1_000);
        assert_eq!(
            summary.stats.transformed + summary.stats.conforming + summary.stats.flagged,
            1_000
        );
        assert!(summary.stats.flagged > 0 && summary.stats.transformed > 0);
    }

    #[test]
    fn streamed_outcomes_equal_one_shot_execution() {
        let program = compiled();
        let column: Vec<String> = (0..500)
            .map(|i| format!("{:03}.{:03}.{:04}", 100 + i % 800, 200 + i % 700, i))
            .collect();
        let one_shot = program.execute(&column);

        let mut stream = program.stream();
        let mut streamed = Vec::new();
        for chunk in column.chunks(77) {
            streamed.extend(stream.push_chunk(chunk).rows);
        }
        let summary = stream.finish();
        assert_eq!(streamed, one_shot.clone().into_row_outcomes());
        assert_eq!(summary.stats, one_shot.stats);
    }

    #[test]
    fn worker_caches_persist_across_chunks() {
        let program = compiled();
        let mut stream = program.stream_with(crate::ExecOptions {
            threads: 1,
            chunk_size: 0,
        });
        let rows: Vec<String> = (0..10).map(|i| format!("111.222.{:04}", i)).collect();
        stream.push_chunk(&rows);
        let decided_after_first = stream.caches[0].len();
        assert!(decided_after_first > 0);
        stream.push_chunk(&rows);
        // Same leaves in the second chunk: no new plans were built.
        assert_eq!(stream.caches[0].len(), decided_after_first);
    }

    #[test]
    fn empty_stream() {
        let program = compiled();
        let summary = program.stream().finish();
        assert_eq!(summary.chunks, 0);
        assert_eq!(summary.rows(), 0);
    }
}
