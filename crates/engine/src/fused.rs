//! The fused multi-pattern decision automaton behind cold-path dispatch.
//!
//! Deciding a *new* leaf signature used to walk the program's branches and
//! run one full backtracking pattern match per branch until one fired —
//! up to k+1 matcher runs (target + k branches) per distinct leaf, the
//! exact cost profile adversarial all-new-leaf streams maximize (the dense
//! leaf-id tier makes *repeat* leaves free, but can do nothing for a leaf
//! it has never seen). [`FusedMatcher`] compiles the target pattern plus
//! every transparent branch pattern into **one** bit-parallel shift-and
//! automaton (Baeza-Yates–Gonnet; the compiled-pattern-buffer +
//! single-pass-scan design of the classic DECUS grep): each pattern
//! becomes a contiguous run of bit positions, each position a character
//! predicate, and one pass over the leaf signature simulates every pattern
//! simultaneously with a handful of word-wide shift/AND/OR operations per
//! consumed character — returning which patterns match, i.e. the
//! Conforming / branch-index / Flagged decision, in a single scan.
//!
//! # The abstract alphabet
//!
//! The automaton never inspects concrete alphanumeric characters — only
//! the tokenizer's *leaf alphabet* ([`TokenClass::leaf_class_index`]): a
//! digit run of length n is n abstract `<D>` symbols (likewise `<L>` and
//! `<U>`), and every other character is its own concrete symbol. The
//! patterns admitted into the automaton are exactly the *transparent* ones
//! (no ASCII alphanumerics inside literal tokens — see the `dispatch`
//! module docs), whose match relation is provably a function of that
//! abstract string; opaque patterns keep their per-row `Check*` plan steps
//! exactly as before. Position predicates map onto the alphabet as:
//!
//! * a `<D>`/`<L>`/`<U>` position accepts its own class symbol;
//! * an `<A>` position accepts `<L>` and `<U>`;
//! * an `<AN>` position accepts `<D>`, `<L>`, `<U>` and the concrete
//!   symbols `-` and `_` (matching [`TokenClass::contains_char`]);
//! * a literal position accepts exactly its concrete character.
//!
//! # Simulation
//!
//! Bit i of the state word(s) means "some prefix of the input ends a match
//! of positions `start(segment)..=i`". A step shifts the state left by one
//! (advancing every thread), re-seeds segment start bits only on the first
//! consumed character (the automaton is anchored — bits carried across a
//! segment boundary are masked off), ANDs with the symbol's transition
//! mask, and ORs back the self-loop threads of `+`-quantified positions.
//! Class runs apply the same step `n` times but exit early on a fixed
//! point, so a `<D>4000` leaf token costs O(automaton width) steps, not
//! 4000. A pattern matches iff its last position's bit is set after the
//! final symbol (an empty pattern matches iff the value is empty).
//!
//! Construction is per-program and falls back — recorded, never silently
//! wrong — to the per-branch loop when the program cannot be encoded
//! ([`FusedFallback`]): combined width beyond [`FUSED_MAX_WIDTH`]
//! positions, or nothing transparent to decide.

use std::collections::HashMap;

use clx_pattern::{Pattern, Quantifier, TokenClass, LEAF_CLASS_COUNT};

/// Bit-state word count of the automaton. Four words cover every
/// realistic synthesized program (one bit position per pattern character)
/// while the whole state still fits in two cache lines.
const WORDS: usize = 4;

/// Maximum combined automaton width, in bit positions: the sum over the
/// target and every transparent branch of their character positions. A
/// program needing more (e.g. a `<D>300` branch) compiles with
/// [`FusedFallback::WidthExceeded`] and keeps the per-branch loop.
pub const FUSED_MAX_WIDTH: usize = WORDS * 64;

type BitRow = [u64; WORDS];

const ZERO: BitRow = [0; WORDS];

/// Sentinel for "character outside the automaton's alphabet"; its
/// transition mask is all-zero, so one step kills every thread.
const NO_SYMBOL: u16 = u16::MAX;

/// Why a compiled program runs cold-path decisions on the per-branch
/// matching loop instead of the fused automaton. Recorded per program at
/// compile time ([`crate::CompiledProgram::fused_fallback`]) and counted
/// as `engine.fused.fallbacks` when compiled under a telemetry sink.
/// Behavior is identical either way — only the cold-path cost differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedFallback {
    /// The target plus transparent branches need more than
    /// [`FUSED_MAX_WIDTH`] bit positions.
    WidthExceeded {
        /// Positions the program would need.
        required: usize,
    },
    /// Neither the target nor any branch is transparent, so the automaton
    /// would decide nothing.
    NothingTransparent,
    /// Fused dispatch was explicitly turned off
    /// ([`crate::CompiledProgram::without_fused`]).
    Disabled,
}

impl std::fmt::Display for FusedFallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FusedFallback::WidthExceeded { required } => write!(
                f,
                "patterns need {required} automaton positions (limit {FUSED_MAX_WIDTH})"
            ),
            FusedFallback::NothingTransparent => write!(f, "no transparent pattern to fuse"),
            FusedFallback::Disabled => write!(f, "fused dispatch disabled"),
        }
    }
}

/// Where one fused pattern accepts.
#[derive(Debug, Clone, Copy)]
struct SegmentAccept {
    /// The segment's final bit position; `None` for a zero-width (empty)
    /// pattern, which matches exactly the empty value.
    last_bit: Option<u32>,
}

/// The state of one classification pass: which automaton threads survived
/// the whole leaf. Produced by [`FusedMatcher::classify`], consumed by the
/// per-pattern accept tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FusedMatches {
    state: BitRow,
    /// `false` iff the leaf was empty (no character consumed), which is
    /// what zero-width segments accept.
    consumed: bool,
}

/// One decision automaton over a program's target + transparent branch
/// patterns. Immutable after construction; safe to share across executor
/// threads.
#[derive(Debug)]
pub(crate) struct FusedMatcher {
    /// Live state words (`ceil(width / 64)`, at least 1).
    words: usize,
    /// Bit set at every non-empty segment's first position.
    starts: BitRow,
    /// Bit set at every `+`-quantified (self-looping) position.
    plus: BitRow,
    /// Per-symbol transition masks: bit i set iff position i's predicate
    /// accepts the symbol. Ids `0..LEAF_CLASS_COUNT` are the abstract
    /// class symbols; the rest are concrete characters.
    masks: Vec<BitRow>,
    /// ASCII character -> symbol id (`NO_SYMBOL` when absent).
    ascii_symbol: [u16; 128],
    /// Non-ASCII character -> symbol id.
    other_symbol: HashMap<char, u16>,
    /// Accept position of the target segment; `None` when the target is
    /// opaque (kept out of the automaton).
    target: Option<SegmentAccept>,
    /// Accept position per branch, in dispatch order; `None` for opaque
    /// branches.
    branches: Vec<Option<SegmentAccept>>,
}

impl FusedMatcher {
    /// Compile the automaton for a program: `target` is `Some` iff the
    /// target pattern is transparent, and `branches[i]` is `Some` iff
    /// branch i is. Errors name the recorded per-program fallback.
    pub(crate) fn build(
        target: Option<&Pattern>,
        branches: &[Option<&Pattern>],
    ) -> Result<FusedMatcher, FusedFallback> {
        let included = || target.iter().chain(branches.iter().flatten());
        if included().next().is_none() {
            return Err(FusedFallback::NothingTransparent);
        }
        // Width check first — O(tokens), before any O(width) allocation.
        let required: usize = included().map(|p| pattern_width(p)).sum();
        if required > FUSED_MAX_WIDTH {
            return Err(FusedFallback::WidthExceeded { required });
        }

        let mut matcher = FusedMatcher {
            words: required.div_ceil(64).max(1),
            starts: ZERO,
            plus: ZERO,
            masks: vec![ZERO; LEAF_CLASS_COUNT],
            ascii_symbol: [NO_SYMBOL; 128],
            other_symbol: HashMap::new(),
            target: None,
            branches: Vec::with_capacity(branches.len()),
        };
        let mut next_bit = 0u32;
        matcher.target = target.map(|p| matcher_segment(&mut matcher, p, &mut next_bit));
        for branch in branches {
            let accept = branch.map(|p| matcher_segment(&mut matcher, p, &mut next_bit));
            matcher.branches.push(accept);
        }
        debug_assert_eq!(next_bit as usize, required);
        Ok(matcher)
    }

    /// Which fused patterns match `leaf`, in one pass over its tokens.
    ///
    /// Returns `None` when `leaf` is not a leaf signature the tokenizer
    /// can produce (a `+` quantifier or an `<A>`/`<AN>` class) — callers
    /// fall back to per-branch matching for that value, counted as a
    /// fallback decision.
    pub(crate) fn classify(&self, leaf: &Pattern) -> Option<FusedMatches> {
        let mut state = ZERO;
        let mut consumed = false;
        for token in leaf.iter() {
            match token.literal_value() {
                Some(s) => {
                    for c in s.chars() {
                        self.step(&mut state, self.symbol(c), !consumed);
                        consumed = true;
                        if state == ZERO {
                            return Some(FusedMatches { state, consumed });
                        }
                    }
                }
                None => {
                    let class = token.class.leaf_class_index()? as u16;
                    let Quantifier::Exact(n) = token.quantifier else {
                        return None;
                    };
                    self.step(&mut state, class, !consumed);
                    consumed = true;
                    if state == ZERO {
                        return Some(FusedMatches { state, consumed });
                    }
                    let mut prev = state;
                    for _ in 1..n {
                        self.step(&mut state, class, false);
                        if state == prev {
                            // Fixed point: repeating the same symbol can
                            // no longer change the state (steps are a pure
                            // function of it), so a long run costs
                            // O(width), not O(run length).
                            break;
                        }
                        if state == ZERO {
                            return Some(FusedMatches { state, consumed });
                        }
                        prev = state;
                    }
                }
            }
        }
        Some(FusedMatches { state, consumed })
    }

    /// Did the (transparent) target pattern match? Always `false` when the
    /// target is opaque — callers gate on the transparency flag.
    pub(crate) fn target_matches(&self, m: &FusedMatches) -> bool {
        self.target.is_some_and(|acc| accepts(m, acc))
    }

    /// Did (transparent) branch `index` match? Always `false` for opaque
    /// branches.
    pub(crate) fn branch_matches(&self, m: &FusedMatches, index: usize) -> bool {
        self.branches[index].is_some_and(|acc| accepts(m, acc))
    }

    /// Advance every thread by one abstract character.
    #[inline]
    fn step(&self, state: &mut BitRow, sym: u16, inject: bool) {
        let mask = if sym == NO_SYMBOL {
            &ZERO
        } else {
            &self.masks[sym as usize]
        };
        let mut carry = 0u64;
        for w in 0..self.words {
            let shifted = (state[w] << 1) | carry;
            carry = state[w] >> 63;
            // A bit shifted onto a start position crossed a segment
            // boundary from the previous pattern's accept position; mask
            // it off. Starts are seeded only on the first character: the
            // automaton is anchored at both ends.
            let mut entering = shifted & !self.starts[w];
            if inject {
                entering |= self.starts[w];
            }
            state[w] = (entering & mask[w]) | (state[w] & mask[w] & self.plus[w]);
        }
    }

    /// The symbol id of one concrete (non-alphanumeric) leaf character.
    #[inline]
    fn symbol(&self, c: char) -> u16 {
        if (c as u32) < 128 {
            self.ascii_symbol[c as usize]
        } else {
            self.other_symbol.get(&c).copied().unwrap_or(NO_SYMBOL)
        }
    }

    /// The symbol id of `c`, interning it on first sight.
    fn intern_symbol(&mut self, c: char) -> u16 {
        let next = self.masks.len() as u16;
        let id = if (c as u32) < 128 {
            let slot = &mut self.ascii_symbol[c as usize];
            if *slot == NO_SYMBOL {
                *slot = next;
            }
            *slot
        } else {
            *self.other_symbol.entry(c).or_insert(next)
        };
        if id == next {
            self.masks.push(ZERO);
        }
        id
    }

    /// Set transition bit `bit` for every symbol `pred` accepts.
    fn set_position(&mut self, bit: u32, pred: &TokenClass) {
        match pred {
            TokenClass::Literal(_) => unreachable!("literals are laid out per character"),
            class => {
                if matches!(class, TokenClass::Digit | TokenClass::AlphaNumeric) {
                    set_bit(&mut self.masks[0], bit);
                }
                if matches!(
                    class,
                    TokenClass::Lower | TokenClass::Alpha | TokenClass::AlphaNumeric
                ) {
                    set_bit(&mut self.masks[1], bit);
                }
                if matches!(
                    class,
                    TokenClass::Upper | TokenClass::Alpha | TokenClass::AlphaNumeric
                ) {
                    set_bit(&mut self.masks[2], bit);
                }
                if matches!(class, TokenClass::AlphaNumeric) {
                    // <AN> also consumes the concrete '-' and '_' symbols
                    // (TokenClass::contains_char).
                    for c in ['-', '_'] {
                        let sym = self.intern_symbol(c);
                        set_bit(&mut self.masks[sym as usize], bit);
                    }
                }
            }
        }
    }
}

/// Lay out one pattern as the next contiguous run of bit positions.
fn matcher_segment(
    matcher: &mut FusedMatcher,
    pattern: &Pattern,
    next_bit: &mut u32,
) -> SegmentAccept {
    let offset = *next_bit;
    for token in pattern.iter() {
        match token.literal_value() {
            Some(s) => {
                for c in s.chars() {
                    let sym = matcher.intern_symbol(c);
                    set_bit(&mut matcher.masks[sym as usize], *next_bit);
                    *next_bit += 1;
                }
            }
            None => {
                let positions = match token.quantifier {
                    Quantifier::Exact(n) => n,
                    Quantifier::OneOrMore => {
                        set_bit(&mut matcher.plus, *next_bit);
                        1
                    }
                };
                for _ in 0..positions {
                    matcher.set_position(*next_bit, &token.class);
                    *next_bit += 1;
                }
            }
        }
    }
    if *next_bit > offset {
        set_bit(&mut matcher.starts, offset);
        SegmentAccept {
            last_bit: Some(*next_bit - 1),
        }
    } else {
        SegmentAccept { last_bit: None }
    }
}

/// Automaton positions a pattern needs: one per literal character, n per
/// `Exact(n)` class token, one (self-looping) per `+` class token.
fn pattern_width(pattern: &Pattern) -> usize {
    pattern
        .iter()
        .map(|t| match t.literal_value() {
            Some(s) => s.chars().count(),
            None => match t.quantifier {
                Quantifier::Exact(n) => n,
                Quantifier::OneOrMore => 1,
            },
        })
        .sum()
}

fn accepts(m: &FusedMatches, acc: SegmentAccept) -> bool {
    match acc.last_bit {
        Some(bit) => (m.state[(bit / 64) as usize] >> (bit % 64)) & 1 == 1,
        None => !m.consumed,
    }
}

#[inline]
fn set_bit(row: &mut BitRow, bit: u32) {
    row[(bit / 64) as usize] |= 1 << (bit % 64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::{parse_pattern, tokenize};

    /// Single-pattern automaton acceptance must agree with the
    /// backtracking `Pattern::matches` on transparent patterns.
    fn assert_agrees(pattern_text: &str, values: &[&str]) {
        let pattern = parse_pattern(pattern_text).unwrap();
        let matcher = FusedMatcher::build(Some(&pattern), &[]).unwrap();
        for value in values {
            let leaf = tokenize(value);
            let m = matcher.classify(&leaf).expect("leaves always classify");
            assert_eq!(
                matcher.target_matches(&m),
                pattern.matches(value),
                "pattern {pattern_text} on {value:?}"
            );
        }
    }

    #[test]
    fn exact_counts_match_like_the_backtracker() {
        assert_agrees(
            "<D>3'-'<D>4",
            &[
                "123-4567",
                "123-456",
                "1234567",
                "123-45678",
                "",
                "abc-defg",
            ],
        );
    }

    #[test]
    fn plus_quantifiers_self_loop() {
        assert_agrees(
            "<U>+'-'<D>+",
            &["A-1", "ABC-123", "-1", "A-", "A-1-2", "ABC-123X", "a-1"],
        );
    }

    #[test]
    fn alpha_positions_accept_both_cases() {
        assert_agrees("<A>3", &["abc", "ABC", "aBc", "ab1", "abcd", "ab"]);
    }

    #[test]
    fn alphanumeric_positions_accept_dash_and_underscore() {
        assert_agrees(
            "<AN>+",
            &["a1-B_2", "a b", "a.b", "---", "___", "x", "", "€"],
        );
    }

    #[test]
    fn adjacent_same_class_tokens_keep_their_counts() {
        // The leaf of "12345" is <D>5; the pattern still splits it 2+3.
        assert_agrees("<D>2<D>3", &["12345", "1234", "123456"]);
    }

    #[test]
    fn non_ascii_literals_are_symbols() {
        let pattern = tokenize("€42"); // '€' literal + <D>2
        let matcher = FusedMatcher::build(Some(&pattern), &[]).unwrap();
        for (value, want) in [("€42", true), ("€4", false), ("$42", false), ("42", false)] {
            let m = matcher.classify(&tokenize(value)).unwrap();
            assert_eq!(matcher.target_matches(&m), want, "on {value:?}");
        }
    }

    #[test]
    fn empty_pattern_matches_only_the_empty_value() {
        let empty = tokenize("");
        let matcher = FusedMatcher::build(Some(&empty), &[]).unwrap();
        let m = matcher.classify(&tokenize("")).unwrap();
        assert!(matcher.target_matches(&m));
        let m = matcher.classify(&tokenize("x")).unwrap();
        assert!(!matcher.target_matches(&m));
    }

    #[test]
    fn multi_word_automata_carry_across_word_boundaries() {
        // Two ~40-position patterns force the second segment to straddle
        // the first/second state words.
        let a = parse_pattern("<D>40'-'<D>2").unwrap();
        let b = parse_pattern("<L>38'.'<L>3").unwrap();
        let matcher = FusedMatcher::build(Some(&a), &[Some(&b)]).unwrap();
        assert!(matcher.words >= 2);
        let a_val = format!("{}-12", "7".repeat(40));
        let b_val = format!("{}.abc", "x".repeat(38));
        let m = matcher.classify(&tokenize(&a_val)).unwrap();
        assert!(matcher.target_matches(&m) && !matcher.branch_matches(&m, 0));
        let m = matcher.classify(&tokenize(&b_val)).unwrap();
        assert!(!matcher.target_matches(&m) && matcher.branch_matches(&m, 0));
        // One digit short: neither.
        let short = format!("{}-12", "7".repeat(39));
        let m = matcher.classify(&tokenize(&short)).unwrap();
        assert!(!matcher.target_matches(&m) && !matcher.branch_matches(&m, 0));
    }

    #[test]
    fn segment_boundaries_do_not_leak_threads() {
        // Back-to-back segments where the first's accept feeds directly
        // into a position that would accept the next symbol if the
        // boundary leaked: '12' must not make branch '2' (pattern <D>)
        // match via the target's ('<D><D>') overflow.
        let target = parse_pattern("<D><D>").unwrap();
        let branch = parse_pattern("<D>").unwrap();
        let matcher = FusedMatcher::build(Some(&target), &[Some(&branch)]).unwrap();
        let m = matcher.classify(&tokenize("12")).unwrap();
        assert!(matcher.target_matches(&m));
        assert!(!matcher.branch_matches(&m, 0), "boundary leaked a thread");
        let m = matcher.classify(&tokenize("1")).unwrap();
        assert!(!matcher.target_matches(&m));
        assert!(matcher.branch_matches(&m, 0));
    }

    #[test]
    fn long_runs_hit_the_fixed_point_early() {
        // <D>+ saturates after one step; a 100k-digit leaf must classify
        // without 100k steps (this test is the regression guard: it runs
        // in microseconds on the fixed-point path, seconds without it).
        let pattern = parse_pattern("<D>+").unwrap();
        let matcher = FusedMatcher::build(Some(&pattern), &[]).unwrap();
        let long = "9".repeat(100_000);
        let m = matcher.classify(&tokenize(&long)).unwrap();
        assert!(matcher.target_matches(&m));
    }

    #[test]
    fn non_leaf_patterns_decline_to_classify() {
        let matcher = FusedMatcher::build(Some(&parse_pattern("<D>3").unwrap()), &[]).unwrap();
        assert!(matcher.classify(&parse_pattern("<D>+").unwrap()).is_none());
        assert!(matcher.classify(&parse_pattern("<AN>2").unwrap()).is_none());
        assert!(matcher.classify(&parse_pattern("<A>").unwrap()).is_none());
    }

    #[test]
    fn width_overflow_is_a_recorded_fallback() {
        let wide = parse_pattern("<D>300").unwrap();
        let err = FusedMatcher::build(Some(&wide), &[]).unwrap_err();
        assert_eq!(err, FusedFallback::WidthExceeded { required: 300 });
        // Also when the *sum* overflows.
        let half = parse_pattern("<D>200").unwrap();
        let err = FusedMatcher::build(Some(&half), &[Some(&half)]).unwrap_err();
        assert_eq!(err, FusedFallback::WidthExceeded { required: 400 });
        assert!(err.to_string().contains("400"));
    }

    #[test]
    fn nothing_transparent_is_a_recorded_fallback() {
        let err = FusedMatcher::build(None, &[None, None]).unwrap_err();
        assert_eq!(err, FusedFallback::NothingTransparent);
    }

    #[test]
    fn opaque_branches_never_match_through_the_automaton() {
        let target = parse_pattern("<D>2").unwrap();
        let matcher = FusedMatcher::build(Some(&target), &[None]).unwrap();
        let m = matcher.classify(&tokenize("42")).unwrap();
        assert!(matcher.target_matches(&m));
        assert!(!matcher.branch_matches(&m, 0));
    }
}
