//! The fused multi-pattern decision automaton behind cold-path dispatch.
//!
//! Deciding a *new* leaf signature used to walk the program's branches and
//! run one full backtracking pattern match per branch until one fired —
//! up to k+1 matcher runs (target + k branches) per distinct leaf, the
//! exact cost profile adversarial all-new-leaf streams maximize (the dense
//! leaf-id tier makes *repeat* leaves free, but can do nothing for a leaf
//! it has never seen). [`FusedMatcher`] compiles the target pattern plus
//! every transparent branch pattern into **one** bit-parallel shift-and
//! automaton — the shared [`clx_pattern::automaton::MultiPatternAutomaton`]
//! (also the substrate of `clx-analyze`'s language-level diagnostics) —
//! returning which patterns match, i.e. the Conforming / branch-index /
//! Flagged decision, in a single scan over the leaf signature.
//!
//! # The abstract alphabet
//!
//! The automaton's classify entry point never inspects concrete
//! alphanumeric characters — only the tokenizer's *leaf alphabet*
//! ([`TokenClass::leaf_class_index`]): a digit run of length n is n
//! abstract `<D>` symbols (likewise `<L>` and `<U>`), and every other
//! character is its own concrete symbol. The patterns admitted into the
//! automaton are exactly the *transparent* ones (no ASCII alphanumerics
//! inside literal tokens — see the `dispatch` module docs), whose match
//! relation is provably a function of that abstract string; opaque
//! patterns keep their per-row `Check*` plan steps exactly as before. See
//! the [`clx_pattern::automaton`] module docs for the position-predicate
//! layout and the step simulation.
//!
//! [`TokenClass::leaf_class_index`]: clx_pattern::TokenClass::leaf_class_index
//!
//! Construction is per-program and falls back — recorded, never silently
//! wrong — to the per-branch loop when the program cannot be encoded
//! ([`FusedFallback`]): combined width beyond [`FUSED_MAX_WIDTH`]
//! positions, or nothing transparent to decide.

use clx_pattern::automaton::{ClassifyRun, MultiPatternAutomaton};
use clx_pattern::Pattern;

/// Maximum combined automaton width, in bit positions: the sum over the
/// target and every transparent branch of their character positions. A
/// program needing more (e.g. a `<D>300` branch) compiles with
/// [`FusedFallback::WidthExceeded`] and keeps the per-branch loop.
pub const FUSED_MAX_WIDTH: usize = clx_pattern::automaton::MAX_WIDTH;

/// Why a compiled program runs cold-path decisions on the per-branch
/// matching loop instead of the fused automaton. Recorded per program at
/// compile time ([`crate::CompiledProgram::fused_fallback`]) and counted
/// as `engine.fused.fallbacks` when compiled under a telemetry sink.
/// Behavior is identical either way — only the cold-path cost differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedFallback {
    /// The target plus transparent branches need more than
    /// [`FUSED_MAX_WIDTH`] bit positions.
    WidthExceeded {
        /// Positions the program would need.
        required: usize,
    },
    /// Neither the target nor any branch is transparent, so the automaton
    /// would decide nothing.
    NothingTransparent,
    /// Fused dispatch was explicitly turned off
    /// ([`crate::CompiledProgram::without_fused`]).
    Disabled,
    /// The winning branch's split boundaries were not derived from the
    /// accepting path — either derived splits were explicitly turned off
    /// ([`crate::CompiledProgram::without_derived_splits`]) or the
    /// defensive reconstruction walk declined. Unlike the other variants
    /// this is per *decision*, not per program: classification itself
    /// stayed fused, only that decision re-ran `Pattern::split`, counted
    /// as `engine.fused.split_fallbacks`.
    SplitUnderived,
}

impl std::fmt::Display for FusedFallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FusedFallback::WidthExceeded { required } => write!(
                f,
                "patterns need {required} automaton positions (limit {FUSED_MAX_WIDTH})"
            ),
            FusedFallback::NothingTransparent => write!(f, "no transparent pattern to fuse"),
            FusedFallback::Disabled => write!(f, "fused dispatch disabled"),
            FusedFallback::SplitUnderived => {
                write!(f, "split boundaries not derived from the accepting path")
            }
        }
    }
}

/// One decision automaton over a program's target + transparent branch
/// patterns: segment 0 is the target, segment i+1 is branch i (opaque
/// slots stay in the layout as absent segments that never match).
/// Immutable after construction; safe to share across executor threads.
#[derive(Debug)]
pub(crate) struct FusedMatcher {
    automaton: MultiPatternAutomaton,
}

impl FusedMatcher {
    /// Compile the automaton for a program: `target` is `Some` iff the
    /// target pattern is transparent, and `branches[i]` is `Some` iff
    /// branch i is. Errors name the recorded per-program fallback.
    pub(crate) fn build(
        target: Option<&Pattern>,
        branches: &[Option<&Pattern>],
    ) -> Result<FusedMatcher, FusedFallback> {
        if target.is_none() && branches.iter().all(Option::is_none) {
            return Err(FusedFallback::NothingTransparent);
        }
        let mut slots: Vec<Option<&Pattern>> = Vec::with_capacity(branches.len() + 1);
        slots.push(target);
        slots.extend_from_slice(branches);
        match MultiPatternAutomaton::build(&slots) {
            Ok(automaton) => Ok(FusedMatcher { automaton }),
            Err(overflow) => Err(FusedFallback::WidthExceeded {
                required: overflow.required,
            }),
        }
    }

    /// Which fused patterns match `leaf`, in one pass over its tokens,
    /// keeping the per-unit frontier journal [`split_ranges`] reads.
    ///
    /// Returns `None` when `leaf` is not a leaf signature the tokenizer
    /// can produce (a `+` quantifier or an `<A>`/`<AN>` class) — callers
    /// fall back to per-branch matching for that value, counted as a
    /// fallback decision.
    ///
    /// [`split_ranges`]: FusedMatcher::split_ranges
    pub(crate) fn classify(&self, leaf: &Pattern) -> Option<ClassifyRun> {
        self.automaton.classify_recorded(leaf)
    }

    /// Did the (transparent) target pattern match? Always `false` when the
    /// target is opaque — callers gate on the transparency flag.
    pub(crate) fn target_matches(&self, run: &ClassifyRun) -> bool {
        self.automaton.matches(run.matches(), 0)
    }

    /// Did (transparent) branch `index` match? Always `false` for opaque
    /// branches.
    pub(crate) fn branch_matches(&self, run: &ClassifyRun, index: usize) -> bool {
        self.automaton.matches(run.matches(), index + 1)
    }

    /// Branch `index`'s token slices as half-open character ranges,
    /// reconstructed from the classification pass's accepting path —
    /// byte-for-byte the ranges `Pattern::split` would produce, without
    /// running it. `None` when the branch did not match or the defensive
    /// reconstruction walk declined ([`FusedFallback::SplitUnderived`]).
    pub(crate) fn split_ranges(
        &self,
        run: &ClassifyRun,
        index: usize,
    ) -> Option<Vec<(usize, usize)>> {
        self.automaton.split_boundaries(run, index + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::{parse_pattern, tokenize};

    /// Single-pattern automaton acceptance must agree with the
    /// backtracking `Pattern::matches` on transparent patterns.
    fn assert_agrees(pattern_text: &str, values: &[&str]) {
        let pattern = parse_pattern(pattern_text).unwrap();
        let matcher = FusedMatcher::build(Some(&pattern), &[]).unwrap();
        for value in values {
            let leaf = tokenize(value);
            let m = matcher.classify(&leaf).expect("leaves always classify");
            assert_eq!(
                matcher.target_matches(&m),
                pattern.matches(value),
                "pattern {pattern_text} on {value:?}"
            );
        }
    }

    #[test]
    fn exact_counts_match_like_the_backtracker() {
        assert_agrees(
            "<D>3'-'<D>4",
            &[
                "123-4567",
                "123-456",
                "1234567",
                "123-45678",
                "",
                "abc-defg",
            ],
        );
    }

    #[test]
    fn plus_quantifiers_self_loop() {
        assert_agrees(
            "<U>+'-'<D>+",
            &["A-1", "ABC-123", "-1", "A-", "A-1-2", "ABC-123X", "a-1"],
        );
    }

    #[test]
    fn alpha_positions_accept_both_cases() {
        assert_agrees("<A>3", &["abc", "ABC", "aBc", "ab1", "abcd", "ab"]);
    }

    #[test]
    fn alphanumeric_positions_accept_dash_and_underscore() {
        assert_agrees(
            "<AN>+",
            &["a1-B_2", "a b", "a.b", "---", "___", "x", "", "€"],
        );
    }

    #[test]
    fn adjacent_same_class_tokens_keep_their_counts() {
        // The leaf of "12345" is <D>5; the pattern still splits it 2+3.
        assert_agrees("<D>2<D>3", &["12345", "1234", "123456"]);
    }

    #[test]
    fn non_ascii_literals_are_symbols() {
        let pattern = tokenize("€42"); // '€' literal + <D>2
        let matcher = FusedMatcher::build(Some(&pattern), &[]).unwrap();
        for (value, want) in [("€42", true), ("€4", false), ("$42", false), ("42", false)] {
            let m = matcher.classify(&tokenize(value)).unwrap();
            assert_eq!(matcher.target_matches(&m), want, "on {value:?}");
        }
    }

    #[test]
    fn empty_pattern_matches_only_the_empty_value() {
        let empty = tokenize("");
        let matcher = FusedMatcher::build(Some(&empty), &[]).unwrap();
        let m = matcher.classify(&tokenize("")).unwrap();
        assert!(matcher.target_matches(&m));
        let m = matcher.classify(&tokenize("x")).unwrap();
        assert!(!matcher.target_matches(&m));
    }

    #[test]
    fn multi_word_automata_carry_across_word_boundaries() {
        // Two ~40-position patterns force the second segment to straddle
        // the first/second state words.
        let a = parse_pattern("<D>40'-'<D>2").unwrap();
        let b = parse_pattern("<L>38'.'<L>3").unwrap();
        let matcher = FusedMatcher::build(Some(&a), &[Some(&b)]).unwrap();
        assert!(matcher.automaton.words() >= 2);
        let a_val = format!("{}-12", "7".repeat(40));
        let b_val = format!("{}.abc", "x".repeat(38));
        let m = matcher.classify(&tokenize(&a_val)).unwrap();
        assert!(matcher.target_matches(&m) && !matcher.branch_matches(&m, 0));
        let m = matcher.classify(&tokenize(&b_val)).unwrap();
        assert!(!matcher.target_matches(&m) && matcher.branch_matches(&m, 0));
        // One digit short: neither.
        let short = format!("{}-12", "7".repeat(39));
        let m = matcher.classify(&tokenize(&short)).unwrap();
        assert!(!matcher.target_matches(&m) && !matcher.branch_matches(&m, 0));
    }

    #[test]
    fn segment_boundaries_do_not_leak_threads() {
        // Back-to-back segments where the first's accept feeds directly
        // into a position that would accept the next symbol if the
        // boundary leaked: '12' must not make branch '2' (pattern <D>)
        // match via the target's ('<D><D>') overflow.
        let target = parse_pattern("<D><D>").unwrap();
        let branch = parse_pattern("<D>").unwrap();
        let matcher = FusedMatcher::build(Some(&target), &[Some(&branch)]).unwrap();
        let m = matcher.classify(&tokenize("12")).unwrap();
        assert!(matcher.target_matches(&m));
        assert!(!matcher.branch_matches(&m, 0), "boundary leaked a thread");
        let m = matcher.classify(&tokenize("1")).unwrap();
        assert!(!matcher.target_matches(&m));
        assert!(matcher.branch_matches(&m, 0));
    }

    #[test]
    fn long_runs_hit_the_fixed_point_early() {
        // <D>+ saturates after one step; a 100k-digit leaf must classify
        // without 100k steps (this test is the regression guard: it runs
        // in microseconds on the fixed-point path, seconds without it).
        let pattern = parse_pattern("<D>+").unwrap();
        let matcher = FusedMatcher::build(Some(&pattern), &[]).unwrap();
        let long = "9".repeat(100_000);
        let m = matcher.classify(&tokenize(&long)).unwrap();
        assert!(matcher.target_matches(&m));
    }

    #[test]
    fn non_leaf_patterns_decline_to_classify() {
        let matcher = FusedMatcher::build(Some(&parse_pattern("<D>3").unwrap()), &[]).unwrap();
        assert!(matcher.classify(&parse_pattern("<D>+").unwrap()).is_none());
        assert!(matcher.classify(&parse_pattern("<AN>2").unwrap()).is_none());
        assert!(matcher.classify(&parse_pattern("<A>").unwrap()).is_none());
    }

    #[test]
    fn width_overflow_is_a_recorded_fallback() {
        let wide = parse_pattern("<D>300").unwrap();
        let err = FusedMatcher::build(Some(&wide), &[]).unwrap_err();
        assert_eq!(err, FusedFallback::WidthExceeded { required: 300 });
        // Also when the *sum* overflows.
        let half = parse_pattern("<D>200").unwrap();
        let err = FusedMatcher::build(Some(&half), &[Some(&half)]).unwrap_err();
        assert_eq!(err, FusedFallback::WidthExceeded { required: 400 });
        assert!(err.to_string().contains("400"));
    }

    #[test]
    fn nothing_transparent_is_a_recorded_fallback() {
        let err = FusedMatcher::build(None, &[None, None]).unwrap_err();
        assert_eq!(err, FusedFallback::NothingTransparent);
    }

    #[test]
    fn opaque_branches_never_match_through_the_automaton() {
        let target = parse_pattern("<D>2").unwrap();
        let matcher = FusedMatcher::build(Some(&target), &[None]).unwrap();
        let m = matcher.classify(&tokenize("42")).unwrap();
        assert!(matcher.target_matches(&m));
        assert!(!matcher.branch_matches(&m, 0));
    }
}
