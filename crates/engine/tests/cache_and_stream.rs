//! Direct coverage of the [`ProgramCache`] LRU eviction order and the
//! streaming `push_chunk`/`finish` path (previously only exercised
//! indirectly through the engine-equivalence suite).

use std::sync::Arc;

use clx_engine::{CompiledProgram, ExecOptions, ProgramCache};
use clx_pattern::tokenize;
use clx_unifi::{Branch, Expr, Program, StringExpr};

/// A tiny one-branch program whose constant makes each fingerprint unique.
fn program(constant: &str) -> Program {
    Program::new(vec![Branch::new(
        tokenize("12/11/2017"),
        Expr::concat(vec![
            StringExpr::const_str(constant.to_string()),
            StringExpr::extract(1),
            StringExpr::const_str("-"),
            StringExpr::extract(3),
        ]),
    )])
}

fn target() -> clx_pattern::Pattern {
    tokenize("#12-11")
}

/// `true` when `(program, target)` is currently resident (serving the
/// lookup from cache, observable through the hit counter).
fn resident(cache: &ProgramCache, p: &Program) -> bool {
    let hits_before = cache.hits();
    cache.get_or_compile(p, &target()).unwrap();
    cache.hits() == hits_before + 1
}

#[test]
fn lru_evicts_in_least_recently_used_order() {
    let cache = ProgramCache::new(3);
    let (a, b, c, d, e) = (
        program("a"),
        program("b"),
        program("c"),
        program("d"),
        program("e"),
    );
    cache.get_or_compile(&a, &target()).unwrap();
    cache.get_or_compile(&b, &target()).unwrap();
    cache.get_or_compile(&c, &target()).unwrap();
    assert_eq!(cache.len(), 3);

    // Touch order is now a, b, c. Touch `a` so `b` is the LRU entry.
    cache.get_or_compile(&a, &target()).unwrap();

    // Inserting `d` must evict `b` (the least recently used), nothing else.
    cache.get_or_compile(&d, &target()).unwrap();
    assert_eq!(cache.len(), 3);
    assert!(resident(&cache, &a), "a was touched, must survive");
    assert!(!resident(&cache, &b), "b was LRU, must be evicted");
    // The probe for `b` just reinserted it, evicting `c` (older than a/d).
    assert!(!resident(&cache, &c));

    // Eviction keeps following recency: now resident are d, a(?) — verify
    // the exact survivor set by filling with one more fresh program.
    cache.get_or_compile(&e, &target()).unwrap();
    assert_eq!(cache.len(), 3);
    assert!(resident(&cache, &e));
}

#[test]
fn lru_capacity_one_always_holds_the_last_program() {
    let cache = ProgramCache::new(1);
    for constant in ["x", "y", "z"] {
        cache.get_or_compile(&program(constant), &target()).unwrap();
        assert_eq!(cache.len(), 1);
    }
    // Only the most recent program is resident.
    assert!(resident(&cache, &program("z")));
    assert!(!resident(&cache, &program("y")));
}

#[test]
fn eviction_follows_recency_not_touch_frequency() {
    // The cache is LRU, not LFU: ten touches of `a` do not pin it once `b`
    // becomes more recent.
    let cache = ProgramCache::new(2);
    let a = program("a");
    let b = program("b");
    cache.get_or_compile(&a, &target()).unwrap();
    for _ in 0..10 {
        cache.get_or_compile(&a, &target()).unwrap();
    }
    cache.get_or_compile(&b, &target()).unwrap();
    assert_eq!(cache.len(), 2);
    assert_eq!(cache.hits(), 10);
    // `b` is now the most recent entry; inserting a third program evicts
    // `a` despite its touch count.
    cache.get_or_compile(&program("c"), &target()).unwrap();
    assert!(resident(&cache, &b));
    assert!(!resident(&cache, &a));
}

#[test]
fn cached_compilations_are_shared_not_recompiled() {
    let cache = Arc::new(ProgramCache::new(4));
    let p = program("#");
    let first = cache.get_or_compile(&p, &target()).unwrap();
    let second = cache.get_or_compile(&p, &target()).unwrap();
    assert!(Arc::ptr_eq(&first, &second));
}

fn dotted_to_dashed() -> CompiledProgram {
    let program = Program::new(vec![Branch::new(
        tokenize("734.236.3466"),
        Expr::concat(vec![
            StringExpr::extract(1),
            StringExpr::const_str("-"),
            StringExpr::extract(3),
            StringExpr::const_str("-"),
            StringExpr::extract(5),
        ]),
    )]);
    CompiledProgram::compile(&program, &tokenize("734-422-8073")).unwrap()
}

#[test]
fn stream_counters_match_pushed_chunks() {
    let program = dotted_to_dashed();
    let mut stream = program.stream_with(ExecOptions {
        threads: 1,
        chunk_size: 0,
    });
    assert_eq!(stream.chunks_pushed(), 0);

    let transformed: Vec<String> = (0..40).map(|i| format!("111.222.{:04}", i)).collect();
    let conforming: Vec<String> = (0..25).map(|i| format!("111-222-{:04}", i)).collect();
    let flagged: Vec<String> = (0..10).map(|_| "???".to_string()).collect();

    let r1 = stream.push_chunk(&transformed);
    assert_eq!(r1.index, 0);
    assert_eq!(r1.stats.transformed, 40);
    let r2 = stream.push_chunk(&conforming);
    assert_eq!(r2.index, 1);
    assert_eq!(r2.stats.conforming, 25);
    let r3 = stream.push_chunk(&flagged);
    assert_eq!(r3.index, 2);
    assert_eq!(r3.stats.flagged, 10);

    // Running totals absorb every chunk.
    assert_eq!(stream.chunks_pushed(), 3);
    assert_eq!(stream.stats().rows(), 75);

    let summary = stream.finish();
    assert_eq!(summary.chunks, 3);
    assert_eq!(summary.rows(), 75);
    assert_eq!(summary.stats.transformed, 40);
    assert_eq!(summary.stats.conforming, 25);
    assert_eq!(summary.stats.flagged, 10);
    assert_eq!(summary.target, tokenize("734-422-8073"));
}

#[test]
fn stream_handles_empty_chunks_and_empty_runs() {
    let program = dotted_to_dashed();
    let mut stream = program.stream();
    let report = stream.push_chunk(&[]);
    assert_eq!(report.len(), 0);
    assert_eq!(stream.chunks_pushed(), 1);
    let summary = stream.finish();
    assert_eq!(summary.rows(), 0);

    // A run with no chunks at all.
    let summary = dotted_to_dashed().stream().finish();
    assert_eq!(summary.chunks, 0);
    assert_eq!(summary.rows(), 0);
}

#[test]
fn streamed_rows_equal_one_shot_and_column_execution() {
    let program = dotted_to_dashed();
    let rows: Vec<String> = (0..600)
        .map(|i| match i % 3 {
            0 => format!("{:03}.{:03}.{:04}", 100 + i % 9, 200 + i % 9, i % 9),
            1 => format!("{:03}-{:03}-{:04}", 100 + i % 9, 200 + i % 9, i % 9),
            _ => "N/A".to_string(),
        })
        .collect();

    let one_shot = program.execute(&rows);
    let by_column = program.execute_column(&clx_column::Column::from_values(&rows));
    assert_eq!(
        one_shot.iter_rows().collect::<Vec<_>>(),
        by_column.iter_rows().collect::<Vec<_>>()
    );

    let mut stream = program.stream();
    let mut streamed = Vec::new();
    for chunk in rows.chunks(128) {
        streamed.extend(stream.push_chunk(chunk).into_row_outcomes());
    }
    let summary = stream.finish();
    let one_shot_stats = one_shot.stats;
    assert_eq!(streamed, one_shot.into_row_outcomes());
    assert_eq!(summary.stats, one_shot_stats);
}
