//! Program explanation: rendering a UniFi program as the set of regexp
//! `Replace` operations shown to the user (Section 5, "Program Explanation",
//! and Figure 4 of the paper).
//!
//! Each `(Match(p), E)` branch becomes one `Replace(regex, replacement)`:
//!
//! * the regex is the source pattern `p` rendered in the Wrangler-style
//!   natural-language-like syntax, with each extracted run of consecutive
//!   tokens wrapped in a capture group (consecutive extracted tokens are
//!   merged into a single group, as the paper specifies);
//! * the replacement string keeps `ConstStr` text verbatim and renders each
//!   `Extract` as the `$k` reference of its capture group.
//!
//! Crucially, the explained operation is *executable*: [`ReplaceOp::apply`]
//! runs the very same regex through the `clx-regex` engine, so tests can
//! assert that what the user reads is exactly what the system does.

use std::fmt;

use clx_pattern::wrangler;
use clx_pattern::{Pattern, Quantifier, Token, TokenClass};
use clx_regex::Regex;

use crate::ast::{Branch, Program, StringExpr};

/// Errors produced while explaining a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExplainError {
    /// Two `Extract` operations reference overlapping but non-identical
    /// token ranges, which cannot be expressed with non-overlapping capture
    /// groups.
    OverlappingExtracts {
        /// The first range (one-based, inclusive).
        first: (usize, usize),
        /// The second range (one-based, inclusive).
        second: (usize, usize),
    },
    /// An `Extract` references a token index outside the source pattern.
    ExtractOutOfBounds {
        /// The offending one-based index.
        index: usize,
        /// The number of tokens in the source pattern.
        pattern_len: usize,
    },
    /// The generated regex failed to compile (indicates a bug).
    Regex(String),
}

impl fmt::Display for ExplainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExplainError::OverlappingExtracts { first, second } => write!(
                f,
                "extracts ({},{}) and ({},{}) overlap and cannot be explained as capture groups",
                first.0, first.1, second.0, second.1
            ),
            ExplainError::ExtractOutOfBounds { index, pattern_len } => write!(
                f,
                "extract references token {index} but the pattern has {pattern_len} tokens"
            ),
            ExplainError::Regex(e) => write!(f, "generated regex failed to compile: {e}"),
        }
    }
}

impl std::error::Error for ExplainError {}

/// One explained `Replace` operation.
#[derive(Debug, Clone)]
pub struct ReplaceOp {
    /// The Wrangler-style regular expression shown to the user, wrapped in
    /// `/^...$/` as in Figure 4.
    pub regex_display: String,
    /// The replacement string shown to the user, e.g. `($1) $2-$3`.
    pub replacement: String,
    /// The source pattern this operation applies to.
    pub source_pattern: Pattern,
    /// The compiled form of `regex_display`, used to execute the operation.
    regex: Regex,
}

impl ReplaceOp {
    /// Build a `Replace` operation directly from its user-facing parts: a
    /// `/^...$/`-wrapped Wrangler regex and a `$k`-style replacement string.
    ///
    /// CLX itself always goes through [`explain_branch`]; this constructor
    /// exists for the RegexReplace baseline, where a (simulated) user
    /// hand-writes operations that may capture at a finer granularity than
    /// whole pattern tokens (e.g. splitting a bare 10-digit run into
    /// `({digit}{3})({digit}{3})({digit}{4})`).
    pub fn from_parts(
        regex_display: &str,
        replacement: &str,
        source_pattern: Pattern,
    ) -> Result<Self, ExplainError> {
        let body = regex_display
            .strip_prefix('/')
            .and_then(|s| s.strip_suffix('/'))
            .unwrap_or(regex_display);
        let regex = Regex::new(body).map_err(|e| ExplainError::Regex(e.to_string()))?;
        Ok(ReplaceOp {
            regex_display: regex_display.to_string(),
            replacement: replacement.to_string(),
            source_pattern,
            regex,
        })
    }

    /// The sentence shown in the operation list (Figure 4):
    /// `Replace '<regex>' in column with '<replacement>'`.
    pub fn describe(&self, column: &str) -> String {
        format!(
            "Replace '{}' in {column} with '{}'",
            self.regex_display, self.replacement
        )
    }

    /// Apply the operation to one value. Returns `None` when the value does
    /// not match the operation's source pattern.
    pub fn apply(&self, value: &str) -> Option<String> {
        if !self.regex.is_match(value) {
            return None;
        }
        Some(self.regex.replace_all(value, &self.replacement))
    }

    /// The compiled regular expression backing this operation.
    pub fn regex(&self) -> &Regex {
        &self.regex
    }
}

/// The full explanation of a UniFi program: one [`ReplaceOp`] per branch.
#[derive(Debug, Clone, Default)]
pub struct Explanation {
    /// The operations, in branch order.
    pub operations: Vec<ReplaceOp>,
}

impl Explanation {
    /// Render the numbered operation list of Figure 4.
    pub fn render(&self, column: &str) -> String {
        self.operations
            .iter()
            .enumerate()
            .map(|(i, op)| format!("{} {}", i + 1, op.describe(column)))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Apply the explanation to a value: the first operation whose pattern
    /// matches transforms it; otherwise the value is returned unchanged.
    pub fn apply(&self, value: &str) -> String {
        for op in &self.operations {
            if let Some(out) = op.apply(value) {
                return out;
            }
        }
        value.to_string()
    }
}

/// Explain one branch as a [`ReplaceOp`].
pub fn explain_branch(branch: &Branch) -> Result<ReplaceOp, ExplainError> {
    let pattern = &branch.pattern;

    // Plans whose extract ranges overlap (e.g. Extract(1) and Extract(1,2))
    // cannot be rendered with flat, non-overlapping capture groups. They can
    // always be rendered after splitting every range extract into per-token
    // extracts, which only changes how the replacement string references
    // groups, not what the operation does.
    let expr_storage;
    let expr = if has_overlapping_extracts(&branch.expr) {
        expr_storage = split_range_extracts(&branch.expr);
        &expr_storage
    } else {
        &branch.expr
    };

    // Collect the distinct extract ranges, validate them, and order them by
    // source position to assign capture-group numbers.
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    for &(from, to) in &expr.extracted_tokens() {
        if from == 0 || to > pattern.len() || from > to {
            return Err(ExplainError::ExtractOutOfBounds {
                index: to.max(from),
                pattern_len: pattern.len(),
            });
        }
        if !ranges.contains(&(from, to)) {
            ranges.push((from, to));
        }
    }
    ranges.sort_unstable();
    for pair in ranges.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if b.0 <= a.1 {
            return Err(ExplainError::OverlappingExtracts {
                first: a,
                second: b,
            });
        }
    }

    // Build the regex: walk the tokens, opening a group at the start of each
    // extracted range and closing it at the end.
    let mut regex_body = String::new();
    for (idx0, token) in pattern.iter().enumerate() {
        let idx = idx0 + 1; // one-based
        if ranges.iter().any(|&(from, _)| from == idx) {
            regex_body.push('(');
        }
        regex_body.push_str(&wrangler_token(token));
        if ranges.iter().any(|&(_, to)| to == idx) {
            regex_body.push(')');
        }
    }
    let regex_display = format!("/^{regex_body}$/");

    // Build the replacement string.
    let group_of = |from: usize, to: usize| -> usize {
        ranges
            .iter()
            .position(|&r| r == (from, to))
            .expect("range registered above")
            + 1
    };
    let mut replacement = String::new();
    for part in &expr.parts {
        match part {
            StringExpr::ConstStr(s) => replacement.push_str(&s.replace('$', "$$")),
            StringExpr::Extract { from, to } => {
                replacement.push_str(&format!("${}", group_of(*from, *to)));
            }
        }
    }

    let regex =
        Regex::new(&format!("^{regex_body}$")).map_err(|e| ExplainError::Regex(e.to_string()))?;

    Ok(ReplaceOp {
        regex_display,
        replacement,
        source_pattern: pattern.clone(),
        regex,
    })
}

/// Do any two extract ranges of the plan overlap without being identical?
fn has_overlapping_extracts(expr: &crate::ast::Expr) -> bool {
    let mut ranges: Vec<(usize, usize)> = Vec::new();
    for &(from, to) in &expr.extracted_tokens() {
        if !ranges.contains(&(from, to)) {
            ranges.push((from, to));
        }
    }
    ranges.sort_unstable();
    ranges.windows(2).any(|pair| pair[1].0 <= pair[0].1)
}

/// Split every `Extract(i, j)` into `Extract(i), ..., Extract(j)`; the
/// resulting plan is observationally identical.
fn split_range_extracts(expr: &crate::ast::Expr) -> crate::ast::Expr {
    let mut parts = Vec::new();
    for part in &expr.parts {
        match part {
            StringExpr::Extract { from, to } => {
                for i in *from..=*to {
                    parts.push(StringExpr::extract(i));
                }
            }
            StringExpr::ConstStr(s) => parts.push(StringExpr::const_str(s.clone())),
        }
    }
    crate::ast::Expr::concat(parts)
}

/// Explain a whole program.
pub fn explain_program(program: &Program) -> Result<Explanation, ExplainError> {
    let operations = program
        .branches
        .iter()
        .map(explain_branch)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Explanation { operations })
}

/// Wrangler rendering of a single token, with `{n}`-braced quantifiers (the
/// form used inside full regexes, Figure 4).
fn wrangler_token(token: &Token) -> String {
    match &token.class {
        TokenClass::Literal(s) => s.chars().map(|c| format!("\\{c}")).collect(),
        base => {
            let name = wrangler::class_wrangler_name(base).expect("base class");
            match token.quantifier {
                Quantifier::Exact(1) => name.to_string(),
                Quantifier::Exact(n) => format!("{name}{{{n}}}"),
                Quantifier::OneOrMore => format!("{name}+"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr;
    use crate::eval::eval_expr;
    use clx_pattern::tokenize;

    /// The phone-number branch of Figure 4, line 2:
    /// `Replace '/^({digit}{3})\-({digit}{3})\-({digit}{4})$/' with '($1) $2-$3'`.
    fn phone_branch() -> Branch {
        Branch::new(
            tokenize("734-422-8073"),
            Expr::concat(vec![
                StringExpr::const_str("("),
                StringExpr::extract(1),
                StringExpr::const_str(") "),
                StringExpr::extract(3),
                StringExpr::const_str("-"),
                StringExpr::extract(5),
            ]),
        )
    }

    #[test]
    fn figure_4_line_2_rendering() {
        let op = explain_branch(&phone_branch()).unwrap();
        assert_eq!(
            op.regex_display,
            "/^({digit}{3})\\-({digit}{3})\\-({digit}{4})$/"
        );
        assert_eq!(op.replacement, "($1) $2-$3");
        let described = op.describe("column1");
        assert!(described.starts_with("Replace '/^({digit}{3})"));
        assert!(described.contains("with '($1) $2-$3'"));
    }

    #[test]
    fn figure_4_line_1_rendering() {
        // "(734)586-7252" with extraction of the three digit runs.
        let branch = Branch::new(
            tokenize("(734)586-7252"),
            Expr::concat(vec![
                StringExpr::const_str("("),
                StringExpr::extract(2),
                StringExpr::const_str(") "),
                StringExpr::extract(4),
                StringExpr::const_str("-"),
                StringExpr::extract(6),
            ]),
        );
        let op = explain_branch(&branch).unwrap();
        assert_eq!(
            op.regex_display,
            "/^\\(({digit}{3})\\)({digit}{3})\\-({digit}{4})$/"
        );
        assert_eq!(op.replacement, "($1) $2-$3");
    }

    #[test]
    fn consecutive_extracts_merge_into_one_group() {
        // Extract(1,4) over "[CPT-00350" keeps one group.
        let branch = Branch::new(
            tokenize("[CPT-00350"),
            Expr::concat(vec![
                StringExpr::extract_range(1, 4),
                StringExpr::const_str("]"),
            ]),
        );
        let op = explain_branch(&branch).unwrap();
        assert_eq!(op.regex_display.matches('(').count(), 1);
        assert_eq!(op.replacement, "$1]");
    }

    #[test]
    fn explained_op_executes_identically_to_unifi_eval() {
        let branch = phone_branch();
        let op = explain_branch(&branch).unwrap();
        let inputs = ["734-422-8073", "555-936-2447", "800-555-0199"];
        for input in inputs {
            let via_unifi = eval_expr(&branch.expr, &branch.pattern, input).unwrap();
            let via_replace = op.apply(input).unwrap();
            assert_eq!(via_unifi, via_replace, "mismatch on {input:?}");
        }
    }

    #[test]
    fn apply_returns_none_for_non_matching_values() {
        let op = explain_branch(&phone_branch()).unwrap();
        assert_eq!(op.apply("(734) 645-8397"), None);
        assert_eq!(op.apply("N/A"), None);
    }

    #[test]
    fn explanation_applies_first_matching_operation() {
        let program = Program::new(vec![
            phone_branch(),
            Branch::new(
                tokenize("(734)586-7252"),
                Expr::concat(vec![
                    StringExpr::const_str("("),
                    StringExpr::extract(2),
                    StringExpr::const_str(") "),
                    StringExpr::extract(4),
                    StringExpr::const_str("-"),
                    StringExpr::extract(6),
                ]),
            ),
        ]);
        let explanation = explain_program(&program).unwrap();
        assert_eq!(explanation.operations.len(), 2);
        assert_eq!(explanation.apply("734-422-8073"), "(734) 422-8073");
        assert_eq!(explanation.apply("(734)586-7252"), "(734) 586-7252");
        // untouched when nothing matches
        assert_eq!(explanation.apply("hello"), "hello");
        let rendered = explanation.render("column1");
        assert!(rendered.starts_with("1 Replace"));
        assert!(rendered.contains("\n2 Replace"));
    }

    #[test]
    fn dollar_signs_in_constants_are_escaped() {
        let branch = Branch::new(
            tokenize("100"),
            Expr::concat(vec![StringExpr::const_str("$"), StringExpr::extract(1)]),
        );
        let op = explain_branch(&branch).unwrap();
        assert_eq!(op.replacement, "$$$1");
        assert_eq!(op.apply("100").unwrap(), "$100");
    }

    #[test]
    fn repeated_extract_of_same_range_shares_a_group() {
        let branch = Branch::new(
            tokenize("ab"),
            Expr::concat(vec![
                StringExpr::extract(1),
                StringExpr::const_str("-"),
                StringExpr::extract(1),
            ]),
        );
        let op = explain_branch(&branch).unwrap();
        assert_eq!(op.replacement, "$1-$1");
        assert_eq!(op.apply("ab").unwrap(), "ab-ab");
    }

    #[test]
    fn overlapping_extracts_fall_back_to_per_token_groups() {
        // Extract(1,2) and Extract(2,3) overlap on token 2; the explanation
        // splits them into per-token groups and still executes identically.
        let branch = Branch::new(
            tokenize("a-b"),
            Expr::concat(vec![
                StringExpr::extract_range(1, 2),
                StringExpr::extract_range(2, 3),
            ]),
        );
        let op = explain_branch(&branch).unwrap();
        assert_eq!(op.replacement, "$1$2$2$3");
        let via_unifi = eval_expr(&branch.expr, &branch.pattern, "a-b").unwrap();
        assert_eq!(op.apply("a-b").unwrap(), via_unifi);
        assert_eq!(via_unifi, "a--b");
    }

    #[test]
    fn out_of_bounds_extract_is_rejected() {
        let branch = Branch::new(tokenize("abc"), Expr::concat(vec![StringExpr::extract(5)]));
        assert!(matches!(
            explain_branch(&branch).unwrap_err(),
            ExplainError::ExtractOutOfBounds { .. }
        ));
    }

    #[test]
    fn literal_tokens_with_regex_metacharacters_are_escaped() {
        let branch = Branch::new(tokenize("(1)"), Expr::concat(vec![StringExpr::extract(2)]));
        let op = explain_branch(&branch).unwrap();
        assert!(op.regex_display.contains("\\("));
        assert!(op.regex_display.contains("\\)"));
        assert_eq!(op.apply("(1)").unwrap(), "1");
    }

    #[test]
    fn plus_quantified_source_pattern_round_trips() {
        let branch = Branch::new(
            clx_pattern::parse_pattern("<U>+'-'<D>+").unwrap(),
            Expr::concat(vec![
                StringExpr::const_str("["),
                StringExpr::extract(1),
                StringExpr::const_str("-"),
                StringExpr::extract(3),
                StringExpr::const_str("]"),
            ]),
        );
        let op = explain_branch(&branch).unwrap();
        assert_eq!(op.regex_display, "/^({upper}+)\\-({digit}+)$/");
        assert_eq!(op.apply("CPT-00350").unwrap(), "[CPT-00350]");
        let via_unifi = eval_expr(&branch.expr, &branch.pattern, "CPT-00350").unwrap();
        assert_eq!(via_unifi, "[CPT-00350]");
    }

    #[test]
    fn explanation_of_empty_program() {
        let explanation = explain_program(&Program::empty()).unwrap();
        assert!(explanation.operations.is_empty());
        assert_eq!(explanation.render("c"), "");
        assert_eq!(explanation.apply("x"), "x");
    }
}
