//! # clx-unifi
//!
//! UniFi — the domain-specific language CLX uses internally to represent
//! data-pattern transformation logic (Section 5 of *CLX: Towards verifiable
//! PBE data transformation*), together with its evaluator and its
//! *explanation* into the regexp `Replace` operations shown to end users.
//!
//! A UniFi program is a `Switch` over pattern-guarded branches; each branch
//! carries an *atomic transformation plan* — a concatenation of
//! `Extract(i, j)` and `ConstStr(s)` operators — that rewrites any string of
//! the source pattern into the target pattern.
//!
//! ```
//! use clx_pattern::tokenize;
//! use clx_unifi::{Branch, Expr, Program, StringExpr, transform, explain_program};
//!
//! // Replace '/^({digit}{3})\-({digit}{3})\-({digit}{4})$/' with '($1) $2-$3'
//! let branch = Branch::new(
//!     tokenize("734-422-8073"),
//!     Expr::concat(vec![
//!         StringExpr::const_str("("),
//!         StringExpr::extract(1),
//!         StringExpr::const_str(") "),
//!         StringExpr::extract(3),
//!         StringExpr::const_str("-"),
//!         StringExpr::extract(5),
//!     ]),
//! );
//! let program = Program::new(vec![branch]);
//!
//! // Evaluate through the DSL ...
//! let out = transform(&program, "734-422-8073").unwrap();
//! assert_eq!(out.value(), "(734) 422-8073");
//!
//! // ... and through the explained Replace operation: same result.
//! let explanation = explain_program(&program).unwrap();
//! assert_eq!(explanation.apply("734-422-8073"), "(734) 422-8073");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod ast;
mod eval;
mod explain;

pub use ast::{Branch, Expr, Program, StringExpr};
pub use eval::{
    eval_branch, eval_expr, eval_expr_on_slices, extract_bounds_violation, transform,
    transform_all, transform_lenient, EvalError, ExtractRule, TransformOutcome,
};
pub use explain::{explain_branch, explain_program, ExplainError, Explanation, ReplaceOp};
