//! Evaluation of UniFi programs against concrete strings.

use std::fmt;

use clx_pattern::{Pattern, PatternError};

use crate::ast::{Branch, Expr, Program, StringExpr};

/// Which well-formedness rule an `Extract { from, to }` range violated.
/// Token indices are one-based and inclusive, so a valid range satisfies
/// `1 <= from <= to <= pattern_len` — one variant per way to break that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractRule {
    /// `from == 0`: token indices are one-based.
    ZeroIndex,
    /// `from > to`: the range is inverted (empty ranges are not a thing in
    /// UniFi — dropping tokens is expressed by omitting them).
    InvertedRange,
    /// `to > pattern_len`: the range reaches past the source pattern's
    /// last token.
    PastEnd,
}

/// The first rule (checked in [`ExtractRule`] declaration order) that
/// `Extract { from, to }` violates against a source pattern of
/// `pattern_len` tokens, or `None` when the range is well-formed.
///
/// This is the single bounds check shared by [`eval_expr_on_slices`],
/// `Branch::validate` and the static analyzer's extract-safety pass, so a
/// range can never be "valid" to one consumer and out-of-bounds to
/// another.
pub fn extract_bounds_violation(from: usize, to: usize, pattern_len: usize) -> Option<ExtractRule> {
    if from == 0 {
        Some(ExtractRule::ZeroIndex)
    } else if from > to {
        Some(ExtractRule::InvertedRange)
    } else if to > pattern_len {
        Some(ExtractRule::PastEnd)
    } else {
        None
    }
}

/// Errors produced while evaluating a UniFi expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The input string does not match the branch's source pattern.
    PatternMismatch(PatternError),
    /// An `Extract` range is ill-formed for the source pattern.
    ExtractOutOfBounds {
        /// The range's one-based start index.
        from: usize,
        /// The range's one-based (inclusive) end index.
        to: usize,
        /// The number of tokens in the source pattern.
        pattern_len: usize,
        /// Which well-formedness rule the range broke.
        rule: ExtractRule,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::PatternMismatch(e) => write!(f, "pattern mismatch: {e}"),
            EvalError::ExtractOutOfBounds {
                from,
                to,
                pattern_len,
                rule,
            } => match rule {
                ExtractRule::ZeroIndex => write!(
                    f,
                    "Extract starts at token 0 but token indices are one-based"
                ),
                ExtractRule::InvertedRange => write!(
                    f,
                    "Extract range is inverted: it starts at token {from} but ends at token {to}"
                ),
                ExtractRule::PastEnd => write!(
                    f,
                    "Extract references token {to} but the source pattern has {pattern_len} tokens"
                ),
            },
        }
    }
}

impl std::error::Error for EvalError {}

impl From<PatternError> for EvalError {
    fn from(e: PatternError) -> Self {
        EvalError::PatternMismatch(e)
    }
}

/// The outcome of running a whole program on one input string (§6.1: any
/// input matching no candidate source pattern is left unchanged and flagged
/// for review).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformOutcome {
    /// A branch matched and produced this output.
    Transformed(String),
    /// No branch matched; the value is left unchanged and flagged.
    Flagged(String),
}

impl TransformOutcome {
    /// The output value, whether transformed or passed through.
    pub fn value(&self) -> &str {
        match self {
            TransformOutcome::Transformed(s) | TransformOutcome::Flagged(s) => s,
        }
    }

    /// `true` if a branch transformed the value.
    pub fn is_transformed(&self) -> bool {
        matches!(self, TransformOutcome::Transformed(_))
    }

    /// `true` if the value was flagged for review.
    pub fn is_flagged(&self) -> bool {
        matches!(self, TransformOutcome::Flagged(_))
    }
}

/// Evaluate an atomic transformation plan against a string known to match
/// `source_pattern`.
pub fn eval_expr(expr: &Expr, source_pattern: &Pattern, input: &str) -> Result<String, EvalError> {
    let slices = source_pattern.split(input)?;
    eval_expr_on_slices(expr, &slices)
}

/// Evaluate an atomic transformation plan against a string already split
/// into per-token slices (for example the cached token stream a
/// `clx-column` `Column` carries per distinct value, when the source
/// pattern is the value's leaf pattern). Skips the pattern split entirely.
pub fn eval_expr_on_slices(
    expr: &Expr,
    slices: &[clx_pattern::TokenSlice],
) -> Result<String, EvalError> {
    let mut out = String::new();
    for part in &expr.parts {
        match part {
            StringExpr::ConstStr(s) => out.push_str(s),
            StringExpr::Extract { from, to } => {
                if let Some(rule) = extract_bounds_violation(*from, *to, slices.len()) {
                    return Err(EvalError::ExtractOutOfBounds {
                        from: *from,
                        to: *to,
                        pattern_len: slices.len(),
                        rule,
                    });
                }
                for slice in &slices[from - 1..*to] {
                    out.push_str(&slice.text);
                }
            }
        }
    }
    Ok(out)
}

/// Evaluate one branch: returns `None` if the input does not match the
/// branch's pattern.
pub fn eval_branch(branch: &Branch, input: &str) -> Option<Result<String, EvalError>> {
    if !branch.pattern.matches(input) {
        return None;
    }
    Some(eval_expr(&branch.expr, &branch.pattern, input))
}

/// Run a whole program on one input string: the first branch whose pattern
/// matches transforms the value; otherwise it is flagged.
pub fn transform(program: &Program, input: &str) -> Result<TransformOutcome, EvalError> {
    for branch in &program.branches {
        if let Some(result) = eval_branch(branch, input) {
            return result.map(TransformOutcome::Transformed);
        }
    }
    Ok(TransformOutcome::Flagged(input.to_string()))
}

/// [`transform`] with the compiled engine's error semantics: a branch
/// whose pattern matches but whose plan fails to evaluate (an ill-formed
/// `Extract` — possible only for programs that never went through
/// [`crate::Program::validate`]) *falls through* to the next branch
/// instead of aborting, and the value is flagged when no branch fires.
///
/// This is exactly what `clx-engine`'s plan interpreter does per row, so
/// a sequential caller using this function and a compiled caller agree
/// row for row even on unvalidated programs. Use [`transform`] when an
/// eval error should surface as a hard error instead.
pub fn transform_lenient(program: &Program, input: &str) -> TransformOutcome {
    for branch in &program.branches {
        if let Some(Ok(out)) = eval_branch(branch, input) {
            return TransformOutcome::Transformed(out);
        }
    }
    TransformOutcome::Flagged(input.to_string())
}

/// Run a program over a column of values. Errors (which indicate an
/// ill-formed program rather than ill-formed data) abort the run.
pub fn transform_all<S: AsRef<str>>(
    program: &Program,
    inputs: &[S],
) -> Result<Vec<TransformOutcome>, EvalError> {
    inputs
        .iter()
        .map(|s| transform(program, s.as_ref()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::{parse_pattern, tokenize};

    /// The Example 5 program from the paper (medical billing codes).
    fn example_5_program() -> Program {
        Program::new(vec![
            Branch::new(
                // "[CPT-00350" -> [ '[', <U>3, '-', <D>5 ]
                tokenize("[CPT-00350"),
                Expr::concat(vec![
                    StringExpr::extract_range(1, 4),
                    StringExpr::const_str("]"),
                ]),
            ),
            Branch::new(
                // "CPT-00340" -> [ <U>3, '-', <D>5 ]
                tokenize("CPT-00340"),
                Expr::concat(vec![
                    StringExpr::const_str("["),
                    StringExpr::extract_range(1, 3),
                    StringExpr::const_str("]"),
                ]),
            ),
            Branch::new(
                // "CPT115" -> [ <U>3, <D>3 ]
                tokenize("CPT115"),
                Expr::concat(vec![
                    StringExpr::const_str("["),
                    StringExpr::extract(1),
                    StringExpr::const_str("-"),
                    StringExpr::extract(2),
                    StringExpr::const_str("]"),
                ]),
            ),
        ])
    }

    #[test]
    fn eval_expr_extract_and_const() {
        let p = tokenize("734-422-8073");
        let e = Expr::concat(vec![
            StringExpr::const_str("("),
            StringExpr::extract(1),
            StringExpr::const_str(") "),
            StringExpr::extract(3),
            StringExpr::const_str("-"),
            StringExpr::extract(5),
        ]);
        assert_eq!(eval_expr(&e, &p, "734-422-8073").unwrap(), "(734) 422-8073");
    }

    #[test]
    fn eval_expr_range_extract() {
        let p = tokenize("[CPT-00350");
        let e = Expr::concat(vec![
            StringExpr::extract_range(1, 4),
            StringExpr::const_str("]"),
        ]);
        assert_eq!(eval_expr(&e, &p, "[CPT-00350").unwrap(), "[CPT-00350]");
    }

    #[test]
    fn eval_expr_out_of_bounds() {
        let p = tokenize("abc");
        let e = Expr::concat(vec![StringExpr::extract(2)]);
        let err = eval_expr(&e, &p, "abc").unwrap_err();
        assert_eq!(
            err,
            EvalError::ExtractOutOfBounds {
                from: 2,
                to: 2,
                pattern_len: 1,
                rule: ExtractRule::PastEnd,
            }
        );
        assert!(err.to_string().contains("token 2"));
    }

    #[test]
    fn eval_expr_zero_index_names_the_one_based_rule() {
        // extract_range debug-asserts validity, so an ill-formed range is
        // built as the raw variant — exactly what a buggy caller would do.
        let p = tokenize("a-b");
        let e = Expr::concat(vec![StringExpr::Extract { from: 0, to: 1 }]);
        let err = eval_expr(&e, &p, "a-b").unwrap_err();
        assert_eq!(
            err,
            EvalError::ExtractOutOfBounds {
                from: 0,
                to: 1,
                pattern_len: 3,
                rule: ExtractRule::ZeroIndex,
            }
        );
        assert!(err.to_string().contains("one-based"));
    }

    #[test]
    fn eval_expr_inverted_range_names_both_bounds() {
        let p = tokenize("a-b");
        let e = Expr::concat(vec![StringExpr::Extract { from: 3, to: 1 }]);
        let err = eval_expr(&e, &p, "a-b").unwrap_err();
        assert_eq!(
            err,
            EvalError::ExtractOutOfBounds {
                from: 3,
                to: 1,
                pattern_len: 3,
                rule: ExtractRule::InvertedRange,
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("token 3") && msg.contains("token 1"), "{msg}");
    }

    #[test]
    fn bounds_violation_rule_order_is_zero_then_inverted_then_past_end() {
        // A range can break several rules at once; the reported rule is
        // the first in declaration order, so messages stay deterministic.
        assert_eq!(
            extract_bounds_violation(0, 9, 1),
            Some(ExtractRule::ZeroIndex)
        );
        assert_eq!(
            extract_bounds_violation(9, 2, 1),
            Some(ExtractRule::InvertedRange)
        );
        assert_eq!(
            extract_bounds_violation(2, 2, 1),
            Some(ExtractRule::PastEnd)
        );
        assert_eq!(extract_bounds_violation(1, 1, 1), None);
    }

    #[test]
    fn eval_expr_mismatch() {
        let p = tokenize("123");
        let e = Expr::concat(vec![StringExpr::extract(1)]);
        let err = eval_expr(&e, &p, "abc").unwrap_err();
        assert!(matches!(err, EvalError::PatternMismatch(_)));
    }

    #[test]
    fn eval_branch_nonmatching_is_none() {
        let branch = Branch::new(tokenize("123"), Expr::concat(vec![StringExpr::extract(1)]));
        assert!(eval_branch(&branch, "abc").is_none());
        assert_eq!(eval_branch(&branch, "555").unwrap().unwrap(), "555");
    }

    #[test]
    fn example_5_medical_codes() {
        // Table 3 of the paper.
        let program = example_5_program();
        let cases = [
            ("CPT-00350", "[CPT-00350]"),
            ("[CPT-00340", "[CPT-00340]"),
            ("[CPT-11536]", "[CPT-11536]"),
            ("CPT115", "[CPT-115]"),
        ];
        for (input, expected) in cases {
            let out = transform(&program, input).unwrap();
            if input == "[CPT-11536]" {
                // Already in the target pattern: no branch matches it (the
                // program in the paper omits the identity branch), so it is
                // flagged but its value is already correct.
                assert_eq!(out.value(), expected);
            } else {
                assert_eq!(
                    out,
                    TransformOutcome::Transformed(expected.to_string()),
                    "input {input:?}"
                );
            }
        }
    }

    #[test]
    fn example_6_name_normalization() {
        // Table 4 of the paper: "Dr. Eran Yahav" -> "Yahav, E."
        // Source pattern: <U><L>'.'' '<U><L>3' '<U><L>4  (tokens 1..9)
        let p = tokenize("Dr. Eran Yahav");
        assert_eq!(p.len(), 9);
        let e = Expr::concat(vec![
            StringExpr::extract_range(8, 9),
            StringExpr::const_str(","),
            StringExpr::const_str(" "),
            StringExpr::extract(5),
            StringExpr::const_str("."),
        ]);
        assert_eq!(eval_expr(&e, &p, "Dr. Eran Yahav").unwrap(), "Yahav, E.");
    }

    #[test]
    fn flagged_values_pass_through() {
        let program = example_5_program();
        let out = transform(&program, "N/A").unwrap();
        assert_eq!(out, TransformOutcome::Flagged("N/A".to_string()));
        assert!(out.is_flagged());
        assert!(!out.is_transformed());
        assert_eq!(out.value(), "N/A");
    }

    #[test]
    fn transform_all_preserves_order() {
        let program = example_5_program();
        let outs = transform_all(&program, &["CPT-00350", "N/A", "CPT115"]).unwrap();
        assert_eq!(outs.len(), 3);
        assert_eq!(outs[0].value(), "[CPT-00350]");
        assert!(outs[1].is_flagged());
        assert_eq!(outs[2].value(), "[CPT-115]");
    }

    #[test]
    fn first_matching_branch_wins() {
        let p_specific = tokenize("123");
        let p_general = parse_pattern("<D>+").unwrap();
        let program = Program::new(vec![
            Branch::new(
                p_specific,
                Expr::concat(vec![StringExpr::const_str("specific")]),
            ),
            Branch::new(
                p_general,
                Expr::concat(vec![StringExpr::const_str("general")]),
            ),
        ]);
        assert_eq!(transform(&program, "123").unwrap().value(), "specific");
        assert_eq!(transform(&program, "99999").unwrap().value(), "general");
    }

    #[test]
    fn empty_program_flags_everything() {
        let program = Program::empty();
        assert!(transform(&program, "anything").unwrap().is_flagged());
    }

    #[test]
    fn empty_expr_produces_empty_string() {
        let p = tokenize("abc");
        assert_eq!(eval_expr(&Expr::default(), &p, "abc").unwrap(), "");
    }

    #[test]
    fn lenient_transform_falls_through_an_ill_formed_branch() {
        let leaf = tokenize("abc");
        let program = Program::new(vec![
            // Matches "abc" but its plan is out of bounds — `transform`
            // aborts here; `transform_lenient` tries the next branch.
            Branch::new(leaf.clone(), Expr::concat(vec![StringExpr::extract(9)])),
            Branch::new(leaf, Expr::concat(vec![StringExpr::const_str("ok")])),
        ]);
        assert!(transform(&program, "abc").is_err());
        assert_eq!(transform_lenient(&program, "abc").value(), "ok");
        // No branch fires at all: flagged, not an error.
        assert!(transform_lenient(&program, "123").is_flagged());
    }
}
