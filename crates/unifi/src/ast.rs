//! The UniFi abstract syntax tree (Figure 7 of the paper).
//!
//! ```text
//! Program L           := Switch((b1, E1), ..., (bn, En))
//! Predicate b         := Match(s, p)
//! Expression E        := Concat(f1, ..., fn)
//! String Expression f := ConstStr(s̃) | Extract(t̃i, t̃j)
//! ```

use std::fmt;

use clx_pattern::Pattern;

/// A string expression: one step of an atomic transformation plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StringExpr {
    /// Emit the constant string.
    ConstStr(String),
    /// Extract the source tokens from one-based index `from` to `to`
    /// (inclusive). `Extract(i)` in the paper is `Extract { from: i, to: i }`.
    Extract {
        /// One-based index of the first extracted token.
        from: usize,
        /// One-based index of the last extracted token (inclusive).
        to: usize,
    },
}

impl StringExpr {
    /// `ConstStr(s)`.
    pub fn const_str(s: impl Into<String>) -> Self {
        StringExpr::ConstStr(s.into())
    }

    /// `Extract(i)` — a single token.
    pub fn extract(i: usize) -> Self {
        StringExpr::Extract { from: i, to: i }
    }

    /// `Extract(i, j)` — a run of consecutive tokens.
    pub fn extract_range(from: usize, to: usize) -> Self {
        debug_assert!(
            from >= 1 && to >= from,
            "extract range must be 1-based and ordered"
        );
        StringExpr::Extract { from, to }
    }

    /// `true` for `Extract` expressions.
    pub fn is_extract(&self) -> bool {
        matches!(self, StringExpr::Extract { .. })
    }

    /// `true` for `ConstStr` expressions.
    pub fn is_const(&self) -> bool {
        matches!(self, StringExpr::ConstStr(_))
    }

    /// The number of source tokens an `Extract` covers (0 for `ConstStr`).
    pub fn extract_width(&self) -> usize {
        match self {
            StringExpr::Extract { from, to } => to - from + 1,
            StringExpr::ConstStr(_) => 0,
        }
    }
}

impl fmt::Display for StringExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StringExpr::ConstStr(s) => write!(f, "ConstStr('{s}')"),
            StringExpr::Extract { from, to } if from == to => write!(f, "Extract({from})"),
            StringExpr::Extract { from, to } => write!(f, "Extract({from},{to})"),
        }
    }
}

/// An atomic transformation plan (Definition 5.1): a concatenation of string
/// expressions that converts a given source pattern into the target pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Expr {
    /// The concatenated string expressions.
    pub parts: Vec<StringExpr>,
}

impl Expr {
    /// `Concat(parts...)`.
    pub fn concat(parts: Vec<StringExpr>) -> Self {
        Expr { parts }
    }

    /// Number of string expressions.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// `true` if the plan has no parts (produces the empty string).
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// One-based source-token indices referenced by `Extract` parts, in plan
    /// order (duplicates preserved).
    pub fn extracted_tokens(&self) -> Vec<(usize, usize)> {
        self.parts
            .iter()
            .filter_map(|p| match p {
                StringExpr::Extract { from, to } => Some((*from, *to)),
                StringExpr::ConstStr(_) => None,
            })
            .collect()
    }

    /// The largest source-token index referenced, if any.
    pub fn max_source_token(&self) -> Option<usize> {
        self.extracted_tokens().iter().map(|&(_, to)| to).max()
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Concat(")?;
        for (i, p) in self.parts.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

/// One `(Match(p), E)` pair of a `Switch`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Branch {
    /// The source pattern guarding this branch.
    pub pattern: Pattern,
    /// The atomic transformation plan applied to matching strings.
    pub expr: Expr,
}

impl Branch {
    /// Create a branch.
    pub fn new(pattern: Pattern, expr: Expr) -> Self {
        Branch { pattern, expr }
    }

    /// Statically check that every `Extract` of the plan stays within the
    /// source pattern (one-based, ordered, `to <= pattern.len()`), via the
    /// shared [`crate::eval::extract_bounds_violation`] rules — the same
    /// check the evaluator applies lazily, row by row; batch compilers
    /// (`clx-engine`) call this up front so an ill-formed program is
    /// rejected before any data is touched.
    ///
    /// This static check is *complete* for every quantifier: for any
    /// string a pattern matches, `Pattern::split` yields exactly one slice
    /// per token (a `+` token yields one slice covering its whole run), so
    /// the per-row slice count always equals `pattern.len()` and a branch
    /// passing this check can never raise
    /// [`ExtractOutOfBounds`](crate::eval::EvalError::ExtractOutOfBounds)
    /// on a matching input.
    pub fn validate(&self) -> Result<(), crate::eval::EvalError> {
        for &(from, to) in &self.expr.extracted_tokens() {
            if let Some(rule) = crate::eval::extract_bounds_violation(from, to, self.pattern.len())
            {
                return Err(crate::eval::EvalError::ExtractOutOfBounds {
                    from,
                    to,
                    pattern_len: self.pattern.len(),
                    rule,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Branch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(Match(\"{}\"), {})", self.pattern, self.expr)
    }
}

/// A UniFi program: a `Switch` over pattern-guarded atomic transformation
/// plans. Strings matching no branch are left unchanged and flagged (§6.1).
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct Program {
    /// The branches, tried in order.
    pub branches: Vec<Branch>,
}

impl Program {
    /// A program with the given branches.
    pub fn new(branches: Vec<Branch>) -> Self {
        Program { branches }
    }

    /// An empty program (leaves every input unchanged).
    pub fn empty() -> Self {
        Program::default()
    }

    /// Number of branches.
    pub fn len(&self) -> usize {
        self.branches.len()
    }

    /// `true` if there are no branches.
    pub fn is_empty(&self) -> bool {
        self.branches.is_empty()
    }

    /// The branch guarded by `pattern`, if present.
    pub fn branch_for(&self, pattern: &Pattern) -> Option<&Branch> {
        self.branches.iter().find(|b| &b.pattern == pattern)
    }

    /// Replace the expression of **every** branch guarded by `pattern`;
    /// returns `true` if at least one such branch existed. This is the
    /// "program repair" interaction of §6.4.
    ///
    /// Duplicate-pattern branches (which a merged or hand-built program
    /// can legally contain — only the first can ever fire, but later
    /// copies survive round-trips) are all repaired together, so a repair
    /// can never leave a stale copy behind that becomes live when an
    /// earlier branch is later removed. When `pattern` guards no branch
    /// the program is unchanged and `false` is returned.
    pub fn repair(&mut self, pattern: &Pattern, expr: Expr) -> bool {
        let mut repaired = false;
        for branch in self.branches.iter_mut().filter(|b| &b.pattern == pattern) {
            branch.expr = expr.clone();
            repaired = true;
        }
        repaired
    }

    /// Statically [`Branch::validate`] every branch of the program.
    pub fn validate(&self) -> Result<(), crate::eval::EvalError> {
        self.branches.iter().try_for_each(Branch::validate)
    }

    /// A stable 64-bit structural hash of the program; programs that
    /// compare equal have equal fingerprints. `clx-engine` combines this
    /// with the labelled target pattern to key its compiled-program cache.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash as _, Hasher as _};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut hasher);
        hasher.finish()
    }

    /// Pretty-print in the paper's `Switch((Match(...), ...), ...)` form.
    pub fn pretty(&self) -> String {
        let mut out = String::from("Switch(");
        for (i, b) in self.branches.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n       ");
            }
            out.push_str(&b.to_string());
        }
        out.push(')');
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::tokenize;

    #[test]
    fn string_expr_constructors() {
        assert_eq!(
            StringExpr::extract(3),
            StringExpr::Extract { from: 3, to: 3 }
        );
        assert_eq!(
            StringExpr::extract_range(1, 4),
            StringExpr::Extract { from: 1, to: 4 }
        );
        assert!(StringExpr::extract(1).is_extract());
        assert!(StringExpr::const_str("x").is_const());
        assert_eq!(StringExpr::extract_range(2, 5).extract_width(), 4);
        assert_eq!(StringExpr::const_str("x").extract_width(), 0);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(StringExpr::extract(2).to_string(), "Extract(2)");
        assert_eq!(StringExpr::extract_range(1, 4).to_string(), "Extract(1,4)");
        assert_eq!(StringExpr::const_str("]").to_string(), "ConstStr(']')");
        let e = Expr::concat(vec![
            StringExpr::extract_range(1, 4),
            StringExpr::const_str("]"),
        ]);
        assert_eq!(e.to_string(), "Concat(Extract(1,4),ConstStr(']'))");
    }

    #[test]
    fn expr_token_accounting() {
        let e = Expr::concat(vec![
            StringExpr::const_str("["),
            StringExpr::extract(1),
            StringExpr::const_str("-"),
            StringExpr::extract_range(2, 3),
        ]);
        assert_eq!(e.extracted_tokens(), vec![(1, 1), (2, 3)]);
        assert_eq!(e.max_source_token(), Some(3));
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
    }

    #[test]
    fn empty_expr() {
        let e = Expr::default();
        assert!(e.is_empty());
        assert_eq!(e.max_source_token(), None);
    }

    #[test]
    fn program_branch_lookup_and_repair() {
        let p1 = tokenize("734-422-8073");
        let p2 = tokenize("(734) 645-8397");
        let mut program = Program::new(vec![
            Branch::new(p1.clone(), Expr::concat(vec![StringExpr::extract(1)])),
            Branch::new(p2.clone(), Expr::concat(vec![StringExpr::extract(2)])),
        ]);
        assert_eq!(program.len(), 2);
        assert!(program.branch_for(&p1).is_some());
        assert!(program.branch_for(&tokenize("zzz")).is_none());

        let new_expr = Expr::concat(vec![StringExpr::const_str("fixed")]);
        assert!(program.repair(&p1, new_expr.clone()));
        assert_eq!(program.branch_for(&p1).unwrap().expr, new_expr);
        assert!(!program.repair(&tokenize("zzz"), new_expr));
    }

    #[test]
    fn pretty_print_contains_all_branches() {
        let program = Program::new(vec![Branch::new(
            tokenize("CPT115"),
            Expr::concat(vec![
                StringExpr::const_str("["),
                StringExpr::extract(1),
                StringExpr::const_str("-"),
                StringExpr::extract(2),
                StringExpr::const_str("]"),
            ]),
        )]);
        let s = program.pretty();
        assert!(s.starts_with("Switch("));
        assert!(s.contains("Match(\"<U>3<D>3\")"));
        assert!(s.contains("ConstStr('[')"));
        assert!(s.contains("Extract(1)"));
    }

    #[test]
    fn empty_program() {
        let p = Program::empty();
        assert!(p.is_empty());
        assert_eq!(p.pretty(), "Switch()");
    }

    #[test]
    fn branch_validation_catches_bad_extracts() {
        let good = Branch::new(
            tokenize("734-422-8073"),
            Expr::concat(vec![
                StringExpr::extract(1),
                StringExpr::extract_range(3, 5),
            ]),
        );
        assert!(good.validate().is_ok());

        use crate::eval::{EvalError, ExtractRule};

        // Each violation names its offending bounds and the broken rule,
        // not a synthesized (possibly in-bounds) index.
        let past_end = Branch::new(tokenize("abc"), Expr::concat(vec![StringExpr::extract(2)]));
        assert_eq!(
            past_end.validate().unwrap_err(),
            EvalError::ExtractOutOfBounds {
                from: 2,
                to: 2,
                pattern_len: 1,
                rule: ExtractRule::PastEnd,
            }
        );

        let inverted = Branch::new(
            tokenize("a-b"),
            Expr::concat(vec![StringExpr::Extract { from: 3, to: 1 }]),
        );
        assert_eq!(
            inverted.validate().unwrap_err(),
            EvalError::ExtractOutOfBounds {
                from: 3,
                to: 1,
                pattern_len: 3,
                rule: ExtractRule::InvertedRange,
            }
        );

        let zero = Branch::new(
            tokenize("a-b"),
            Expr::concat(vec![StringExpr::Extract { from: 0, to: 1 }]),
        );
        assert_eq!(
            zero.validate().unwrap_err(),
            EvalError::ExtractOutOfBounds {
                from: 0,
                to: 1,
                pattern_len: 3,
                rule: ExtractRule::ZeroIndex,
            }
        );
    }

    #[test]
    fn program_validation_checks_every_branch() {
        let mut program = Program::new(vec![Branch::new(
            tokenize("abc"),
            Expr::concat(vec![StringExpr::extract(1)]),
        )]);
        assert!(program.validate().is_ok());
        program.branches.push(Branch::new(
            tokenize("abc"),
            Expr::concat(vec![StringExpr::extract(9)]),
        ));
        assert!(program.validate().is_err());
    }

    #[test]
    fn repair_rewrites_every_duplicate_pattern_branch() {
        let pattern = tokenize("abc");
        let other = tokenize("123");
        let old = Expr::concat(vec![StringExpr::extract(1)]);
        let new = Expr::concat(vec![StringExpr::const_str("x")]);
        let mut program = Program::new(vec![
            Branch::new(pattern.clone(), old.clone()),
            Branch::new(other.clone(), old.clone()),
            Branch::new(pattern.clone(), old.clone()),
        ]);
        assert!(program.repair(&pattern, new.clone()));
        assert_eq!(program.branches[0].expr, new);
        assert_eq!(
            program.branches[2].expr, new,
            "later duplicate repaired too"
        );
        assert_eq!(program.branches[1].expr, old, "other branch untouched");
    }

    #[test]
    fn repair_of_unknown_pattern_changes_nothing() {
        let old = Expr::concat(vec![StringExpr::extract(1)]);
        let mut program = Program::new(vec![Branch::new(tokenize("abc"), old.clone())]);
        let before = program.clone();
        assert!(!program.repair(
            &tokenize("12"),
            Expr::concat(vec![StringExpr::const_str("x")])
        ));
        assert_eq!(program, before);
    }

    #[test]
    fn fingerprint_tracks_structural_equality() {
        let make = |c: &str| {
            Program::new(vec![Branch::new(
                tokenize("abc"),
                Expr::concat(vec![StringExpr::const_str(c), StringExpr::extract(1)]),
            )])
        };
        assert_eq!(make("x").fingerprint(), make("x").fingerprint());
        assert_ne!(make("x").fingerprint(), make("y").fingerprint());
        assert_eq!(
            Program::empty().fingerprint(),
            Program::empty().fingerprint()
        );
    }
}
