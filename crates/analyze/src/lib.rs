//! # clx-analyze
//!
//! Static diagnostics over synthesized UniFi programs: language-level
//! proofs about a program **before any row runs**, the static half of
//! CLX's "verifiable PBE" claim.
//!
//! Given a [`Program`](clx_unifi::Program) and the labelled target
//! [`Pattern`](clx_pattern::Pattern), [`analyze_program`] runs six passes
//! — each with its own stable diagnostic code — over one shared
//! bit-parallel automaton ([`clx_pattern::automaton`], the same
//! implementation behind `clx-engine`'s fused dispatch):
//!
//! | Code | Check | Severity |
//! |------|-------|----------|
//! | `CLX000` | analysis incomplete (width/search budget) | info |
//! | `CLX001` | dead branch (empty or union-unreachable language) | error |
//! | `CLX002` | shadowed branch (single earlier branch subsumes it) | error |
//! | `CLX003` | ambiguous overlap between live branches | warning |
//! | `CLX004` | redundant branch (target already covers it) | warning |
//! | `CLX005` | unsafe `Extract` (out of bounds for every matching row) | error |
//! | `CLX006` | output conformance not provable | warning |
//!
//! `Error` findings are proofs of a defect; `Warning` findings are
//! properties the (over-approximating) analyzer could not prove. The
//! report also carries per-branch [`BranchFacts`] (reachable /
//! extract-safe / proven-conforming), the change-impact substrate for
//! incremental re-verification.
//!
//! ```
//! use clx_analyze::{analyze_program, DiagnosticCode};
//! use clx_pattern::parse_pattern;
//! use clx_unifi::{Branch, Expr, Program, StringExpr};
//!
//! let target = parse_pattern("<D>3").unwrap();
//! let program = Program::new(vec![
//!     Branch::new(parse_pattern("<D>+").unwrap(),
//!                 Expr::concat(vec![StringExpr::const_str("000")])),
//!     Branch::new(parse_pattern("<D>2").unwrap(), // shadowed by <D>+
//!                 Expr::concat(vec![StringExpr::const_str("000")])),
//! ]);
//! let report = analyze_program(&program, &target);
//! assert!(report.has_errors());
//! let finding = report.by_code(DiagnosticCode::ShadowedBranch).next().unwrap();
//! assert_eq!(finding.branch, Some(1));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod diagnostic;
mod passes;

pub use diagnostic::{
    BranchFacts, Diagnostic, DiagnosticCode, Evidence, ProgramDiagnostics, Severity,
};
pub use passes::{analyze_observed, analyze_program};
