//! The analysis passes: each check is one pass emitting one diagnostic
//! code, run in a fixed order over a shared automaton.
//!
//! # Pass order and soundness
//!
//! 1. **Extract safety** (`CLX005`) — pure arithmetic over the branch's
//!    own pattern via the shared
//!    [`clx_unifi::extract_bounds_violation`] rules. The check is *exact*:
//!    `Pattern::split` yields exactly one slice per token for every
//!    matching string, so "in bounds against `pattern.len()`" is "in
//!    bounds for every matching row", quantifiers included.
//! 2. **Reachability** (`CLX001`/`CLX002`/`CLX003`) — one automaton over
//!    `[target, branch 0, …, branch k-1]` answers, per branch: is its
//!    language empty; does a *single* earlier branch subsume it
//!    (shadowed); does the union of earlier branches subsume it (dead);
//!    and, for live pairs, a concrete overlap witness. Subsumption by an
//!    earlier branch is checked against *all* earlier branches, alive or
//!    not — first-match semantics consult dead branches too, so the
//!    verdicts stay runtime-true.
//! 3. **Redundancy** (`CLX004`) — language subsumption by the target for
//!    branches not already reported unreachable.
//! 4. **Conformance** (`CLX006`) — each reachable, extract-safe branch's
//!    plan is abstracted to an *output pattern*: `ConstStr(s)` contributes
//!    `tokenize(s)`'s tokens, `Extract(i, j)` contributes the source
//!    pattern's tokens `i..=j`. Every concrete output is a string of that
//!    pattern's language (each extracted slice is a string of its source
//!    token), so proving `L(output) ⊆ L(target)` proves every row
//!    conforms. The abstraction over-approximates (an extracted `<D>2`
//!    slice next to a constant digit re-tokenizes as one longer run —
//!    which the automaton handles — but constants are also *specific*
//!    strings abstracted to their whole token class), so a failed proof is
//!    a warning ("cannot prove"), never a claimed counterexample about
//!    concrete rows.
//!
//! Language verdicts come from the bounded automaton search; when the
//! automaton cannot be built (width overflow) or a search exceeds its
//! state budget, affected passes degrade to cheaper token-level checks
//! (`Pattern::covers`) and a `CLX000` info finding records the gap —
//! analysis never guesses.

use std::sync::Arc;

use clx_pattern::automaton::MultiPatternAutomaton;
use clx_pattern::{tokenize, Pattern, Token};
use clx_telemetry::{MetricSink, Span};
use clx_unifi::{extract_bounds_violation, Program, StringExpr};

use crate::diagnostic::{BranchFacts, Diagnostic, DiagnosticCode, Evidence, ProgramDiagnostics};

/// Analyze `program` against the labelled `target` pattern, with no
/// telemetry.
pub fn analyze_program(program: &Program, target: &Pattern) -> ProgramDiagnostics {
    analyze_observed(program, target, None)
}

/// Analyze `program` against the labelled `target` pattern, recording
/// `engine.analyze.*` pass timings and per-code counters into `sink`.
pub fn analyze_observed(
    program: &Program,
    target: &Pattern,
    sink: Option<&Arc<dyn MetricSink>>,
) -> ProgramDiagnostics {
    let _total = Span::start(sink, "engine.analyze.total_ns");
    if let Some(s) = sink {
        s.counter("engine.analyze.runs", 1);
    }

    let mut diagnostics = Vec::new();
    let mut facts = vec![
        BranchFacts {
            reachable: true,
            extract_safe: true,
            proven_conforming: false,
        };
        program.branches.len()
    ];

    {
        let _span = Span::start(sink, "engine.analyze.extracts_ns");
        extract_safety_pass(program, &mut diagnostics, &mut facts);
    }

    // One automaton serves reachability and redundancy: segment 0 is the
    // target, segment i+1 is branch i.
    let automaton = {
        let _span = Span::start(sink, "engine.analyze.build_ns");
        let mut slots: Vec<Option<&Pattern>> = Vec::with_capacity(program.branches.len() + 1);
        slots.push(Some(target));
        slots.extend(program.branches.iter().map(|b| Some(&b.pattern)));
        MultiPatternAutomaton::build(&slots)
    };
    let automaton = match automaton {
        Ok(a) => Some(a),
        Err(overflow) => {
            diagnostics.push(Diagnostic {
                code: DiagnosticCode::AnalysisIncomplete,
                severity: DiagnosticCode::AnalysisIncomplete.severity(),
                branch: None,
                message: format!(
                    "language analysis skipped: {overflow}; falling back to token-level checks"
                ),
                evidence: Evidence::WidthExceeded {
                    required: overflow.required,
                },
            });
            None
        }
    };

    {
        let _span = Span::start(sink, "engine.analyze.reachability_ns");
        reachability_pass(program, automaton.as_ref(), &mut diagnostics, &mut facts);
    }
    {
        let _span = Span::start(sink, "engine.analyze.redundancy_ns");
        redundancy_pass(
            program,
            target,
            automaton.as_ref(),
            &mut diagnostics,
            &facts,
        );
    }
    {
        let _span = Span::start(sink, "engine.analyze.conformance_ns");
        conformance_pass(program, target, &mut diagnostics, &mut facts);
    }

    if let Some(s) = sink {
        for d in &diagnostics {
            s.counter(code_counter(d.code), 1);
        }
    }
    ProgramDiagnostics { diagnostics, facts }
}

/// The static counter name for one diagnostic code (metric sinks take
/// `&'static str` names, so these cannot be formatted on the fly).
fn code_counter(code: DiagnosticCode) -> &'static str {
    match code {
        DiagnosticCode::AnalysisIncomplete => "engine.analyze.diagnostics.clx000",
        DiagnosticCode::DeadBranch => "engine.analyze.diagnostics.clx001",
        DiagnosticCode::ShadowedBranch => "engine.analyze.diagnostics.clx002",
        DiagnosticCode::AmbiguousOverlap => "engine.analyze.diagnostics.clx003",
        DiagnosticCode::RedundantBranch => "engine.analyze.diagnostics.clx004",
        DiagnosticCode::UnsafeExtract => "engine.analyze.diagnostics.clx005",
        DiagnosticCode::UnprovenConformance => "engine.analyze.diagnostics.clx006",
    }
}

/// `CLX005`: every `Extract` of every branch, against its own pattern.
/// One diagnostic per offending plan part (a plan can break several).
fn extract_safety_pass(
    program: &Program,
    diagnostics: &mut Vec<Diagnostic>,
    facts: &mut [BranchFacts],
) {
    for (index, branch) in program.branches.iter().enumerate() {
        let pattern_len = branch.pattern.len();
        for (part, expr) in branch.expr.parts.iter().enumerate() {
            let StringExpr::Extract { from, to } = expr else {
                continue;
            };
            let Some(rule) = extract_bounds_violation(*from, *to, pattern_len) else {
                continue;
            };
            facts[index].extract_safe = false;
            diagnostics.push(Diagnostic {
                code: DiagnosticCode::UnsafeExtract,
                severity: DiagnosticCode::UnsafeExtract.severity(),
                branch: Some(index),
                message: format!(
                    "plan part {part} ({expr}) is out of bounds for the \
                     {pattern_len}-token source pattern: every matching row would \
                     raise an evaluation error"
                ),
                evidence: Evidence::ExtractBounds {
                    part,
                    from: *from,
                    to: *to,
                    pattern_len,
                    rule,
                },
            });
        }
    }
}

/// `CLX001`/`CLX002`/`CLX003`: per-branch emptiness, shadowing by a
/// single earlier branch, death under the union of earlier branches, and
/// pairwise overlap between live branches.
fn reachability_pass(
    program: &Program,
    automaton: Option<&MultiPatternAutomaton>,
    diagnostics: &mut Vec<Diagnostic>,
    facts: &mut [BranchFacts],
) {
    let Some(automaton) = automaton else {
        // Token-level fallback: `covers` proves shadowing for
        // generalization-shaped pairs; emptiness/union checks need the
        // automaton and are skipped (already recorded as CLX000).
        for (index, branch) in program.branches.iter().enumerate().skip(1) {
            let pattern = &branch.pattern;
            if let Some(earlier) = (0..index).find(|&j| {
                program.branches[j].pattern.covers(pattern)
                    || &program.branches[j].pattern == pattern
            }) {
                facts[index].reachable = false;
                diagnostics.push(shadowed(index, earlier));
            }
        }
        return;
    };

    let mut incomplete = false;
    for index in 0..program.branches.len() {
        let seg = index + 1;
        // Emptiness first: an empty language is dead regardless of order.
        match automaton.language_empty(seg) {
            Some(true) => {
                facts[index].reachable = false;
                diagnostics.push(Diagnostic {
                    code: DiagnosticCode::DeadBranch,
                    severity: DiagnosticCode::DeadBranch.severity(),
                    branch: Some(index),
                    message: "no string matches the branch pattern".into(),
                    evidence: Evidence::EmptyLanguage,
                });
                continue;
            }
            Some(false) => {}
            None => incomplete = true,
        }
        if index == 0 {
            continue;
        }
        // One earlier branch covering everything: shadowed. Checked
        // against every earlier branch (not only live ones) because
        // first-match semantics consult them all.
        let earlier_segs: Vec<usize> = (1..seg).collect();
        let single = (0..index).find(|&j| automaton.uncovered_witness(seg, &[j + 1]) == Some(None));
        if let Some(earlier) = single {
            facts[index].reachable = false;
            diagnostics.push(shadowed(index, earlier));
            continue;
        }
        // The union of earlier branches covering everything with no
        // single culprit: dead.
        match automaton.uncovered_witness(seg, &earlier_segs) {
            Some(None) => {
                facts[index].reachable = false;
                diagnostics.push(Diagnostic {
                    code: DiagnosticCode::DeadBranch,
                    severity: DiagnosticCode::DeadBranch.severity(),
                    branch: Some(index),
                    message: format!(
                        "every matching string is claimed by earlier branches \
                         0..={}: the branch can never fire",
                        index - 1
                    ),
                    evidence: Evidence::Unreachable {
                        earlier: (0..index).collect(),
                    },
                });
                continue;
            }
            Some(Some(_)) => {}
            None => incomplete = true,
        }
        // Overlap warnings only between *live* pairs: overlap with a dead
        // branch adds noise on top of the error already reported.
        for (other, other_facts) in facts.iter().enumerate().take(index) {
            if !other_facts.reachable {
                continue;
            }
            match automaton.intersection_witness(other + 1, seg) {
                Some(Some(witness)) => {
                    diagnostics.push(Diagnostic {
                        code: DiagnosticCode::AmbiguousOverlap,
                        severity: DiagnosticCode::AmbiguousOverlap.severity(),
                        branch: Some(index),
                        message: format!(
                            "shares inputs with branch {other} (e.g. {witness:?}): \
                             which branch fires depends on branch order"
                        ),
                        evidence: Evidence::Overlap { other, witness },
                    });
                }
                Some(None) => {}
                None => incomplete = true,
            }
        }
    }
    if incomplete {
        diagnostics.push(Diagnostic {
            code: DiagnosticCode::AnalysisIncomplete,
            severity: DiagnosticCode::AnalysisIncomplete.severity(),
            branch: None,
            message: format!(
                "some reachability searches exceeded the {}-state budget; \
                 affected verdicts default to \"no finding\"",
                clx_pattern::automaton::SEARCH_STATE_LIMIT
            ),
            evidence: Evidence::SearchBudgetExceeded,
        });
    }
}

fn shadowed(index: usize, earlier: usize) -> Diagnostic {
    Diagnostic {
        code: DiagnosticCode::ShadowedBranch,
        severity: DiagnosticCode::ShadowedBranch.severity(),
        branch: Some(index),
        message: format!(
            "branch {earlier} matches every string this branch matches: \
             first-match semantics starve it"
        ),
        evidence: Evidence::ShadowedBy { earlier },
    }
}

/// `CLX004`: branches whose whole language already conforms to the
/// target. Unreachable branches are skipped (they already carry an
/// error).
fn redundancy_pass(
    program: &Program,
    target: &Pattern,
    automaton: Option<&MultiPatternAutomaton>,
    diagnostics: &mut Vec<Diagnostic>,
    facts: &[BranchFacts],
) {
    for (index, branch) in program.branches.iter().enumerate() {
        if !facts[index].reachable {
            continue;
        }
        let redundant = match automaton {
            Some(a) => a.uncovered_witness(index + 1, &[0]) == Some(None),
            // Token-level fallback when the automaton could not be built.
            None => target.covers(&branch.pattern) || target == &branch.pattern,
        };
        if redundant {
            diagnostics.push(Diagnostic {
                code: DiagnosticCode::RedundantBranch,
                severity: DiagnosticCode::RedundantBranch.severity(),
                branch: Some(index),
                message: "every matching string already conforms to the target: \
                          the transform should be the identity"
                    .into(),
                evidence: Evidence::CoveredByTarget,
            });
        }
    }
}

/// `CLX006`: abstract each plan to an output pattern and prove it covered
/// by the target. Skips unreachable branches (their outputs never
/// materialize) and extract-unsafe branches (they have no outputs, only
/// errors — already reported as CLX005).
fn conformance_pass(
    program: &Program,
    target: &Pattern,
    diagnostics: &mut Vec<Diagnostic>,
    facts: &mut [BranchFacts],
) {
    for (index, branch) in program.branches.iter().enumerate() {
        if !facts[index].reachable || !facts[index].extract_safe {
            continue;
        }
        let output = output_pattern(branch.pattern.tokens(), &branch.expr.parts);
        if output == *target || target.covers(&output) {
            facts[index].proven_conforming = true;
            continue;
        }
        // Token-level cover failed; ask the automaton at language level
        // (e.g. Extract splitting a digit run differently than the
        // target's token boundaries).
        match MultiPatternAutomaton::build(&[Some(target), Some(&output)]) {
            Ok(automaton) => match automaton.uncovered_witness(1, &[0]) {
                Some(None) => {
                    facts[index].proven_conforming = true;
                    continue;
                }
                Some(Some(witness)) => {
                    diagnostics.push(unproven(index, output, Some(witness)));
                    continue;
                }
                None => {}
            },
            Err(_) => {
                // Width overflow: merging adjacent same-class runs only
                // generalizes the output language, so a cover of the
                // merged pattern is still a proof.
                if target.covers(&output.merge_adjacent()) {
                    facts[index].proven_conforming = true;
                    continue;
                }
            }
        }
        diagnostics.push(unproven(index, output, None));
    }
}

fn unproven(index: usize, output: Pattern, witness: Option<String>) -> Diagnostic {
    let detail = match &witness {
        Some(w) => format!(" (it can produce {w:?}, which the target rejects)"),
        None => String::new(),
    };
    Diagnostic {
        code: DiagnosticCode::UnprovenConformance,
        severity: DiagnosticCode::UnprovenConformance.severity(),
        branch: Some(index),
        message: format!(
            "cannot prove outputs conform to the target: the plan's output \
             pattern is {output}{detail}"
        ),
        evidence: Evidence::OutputDiverges { output, witness },
    }
}

/// The abstract output pattern of one plan: constants tokenize through
/// the standard tokenizer, extracts contribute their source tokens
/// verbatim.
fn output_pattern(source: &[Token], parts: &[StringExpr]) -> Pattern {
    let mut tokens: Vec<Token> = Vec::new();
    for part in parts {
        match part {
            StringExpr::ConstStr(s) => tokens.extend(tokenize(s).tokens().iter().cloned()),
            StringExpr::Extract { from, to } => {
                tokens.extend(source[from - 1..*to].iter().cloned());
            }
        }
    }
    Pattern::new(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::parse_pattern;
    use clx_unifi::{Branch, Expr};

    fn extract(i: usize) -> StringExpr {
        StringExpr::extract(i)
    }

    fn konst(s: &str) -> StringExpr {
        StringExpr::const_str(s)
    }

    fn identity_branch(pattern: &str) -> Branch {
        let p = parse_pattern(pattern).unwrap();
        let parts = (1..=p.len()).map(extract).collect();
        Branch::new(p, Expr::concat(parts))
    }

    #[test]
    fn clean_program_has_no_findings() {
        let target = parse_pattern("<D>3'-'<D>4").unwrap();
        let program = Program::new(vec![Branch::new(
            parse_pattern("<D>3'.'<D>4").unwrap(),
            Expr::concat(vec![extract(1), konst("-"), extract(3)]),
        )]);
        let report = analyze_program(&program, &target);
        assert!(report.is_clean(), "{report}");
        assert!(report.facts[0].reachable);
        assert!(report.facts[0].extract_safe);
        assert!(report.facts[0].proven_conforming);
    }

    #[test]
    fn shadowing_names_the_single_culprit() {
        let target = parse_pattern("<D>3").unwrap();
        let program = Program::new(vec![identity_branch("<D>+"), identity_branch("<D>2")]);
        let report = analyze_program(&program, &target);
        let shadow: Vec<_> = report.by_code(DiagnosticCode::ShadowedBranch).collect();
        assert_eq!(shadow.len(), 1);
        assert_eq!(shadow[0].branch, Some(1));
        assert_eq!(shadow[0].evidence, Evidence::ShadowedBy { earlier: 0 });
        assert!(!report.facts[1].reachable);
        assert!(report.has_errors());
    }

    #[test]
    fn union_death_is_distinct_from_shadowing() {
        // <AN> ⊆ <D> ∪ <L> ∪ <U> ∪ '-' ∪ '_' but no single branch covers it.
        let target = parse_pattern("<D>8").unwrap();
        let mut branches: Vec<Branch> = ["<D>", "<L>", "<U>", "'-'", "'_'"]
            .iter()
            .map(|p| {
                Branch::new(
                    parse_pattern(p).unwrap(),
                    Expr::concat(vec![konst("12345678")]),
                )
            })
            .collect();
        branches.push(Branch::new(
            parse_pattern("<AN>").unwrap(),
            Expr::concat(vec![konst("12345678")]),
        ));
        let report = analyze_program(&Program::new(branches), &target);
        let dead: Vec<_> = report.by_code(DiagnosticCode::DeadBranch).collect();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].branch, Some(5));
        assert_eq!(
            dead[0].evidence,
            Evidence::Unreachable {
                earlier: vec![0, 1, 2, 3, 4]
            }
        );
        assert!(report
            .by_code(DiagnosticCode::ShadowedBranch)
            .next()
            .is_none());
    }

    #[test]
    fn overlap_is_a_warning_with_a_real_witness() {
        let target = parse_pattern("<D>4").unwrap();
        let program = Program::new(vec![
            Branch::new(
                parse_pattern("<D><AN>").unwrap(),
                Expr::concat(vec![konst("1234")]),
            ),
            Branch::new(
                parse_pattern("<AN><D>").unwrap(),
                Expr::concat(vec![konst("1234")]),
            ),
        ]);
        let report = analyze_program(&program, &target);
        let overlaps: Vec<_> = report.by_code(DiagnosticCode::AmbiguousOverlap).collect();
        assert_eq!(overlaps.len(), 1);
        assert_eq!(overlaps[0].branch, Some(1));
        let Evidence::Overlap { other, witness } = &overlaps[0].evidence else {
            panic!("wrong evidence: {:?}", overlaps[0].evidence);
        };
        assert_eq!(*other, 0);
        assert!(program.branches[0].pattern.matches(witness));
        assert!(program.branches[1].pattern.matches(witness));
        assert!(!report.has_errors());
    }

    #[test]
    fn redundant_branch_is_covered_by_the_target() {
        let target = parse_pattern("<D>+").unwrap();
        let program = Program::new(vec![identity_branch("<D>3")]);
        let report = analyze_program(&program, &target);
        let redundant: Vec<_> = report.by_code(DiagnosticCode::RedundantBranch).collect();
        assert_eq!(redundant.len(), 1);
        assert_eq!(redundant[0].evidence, Evidence::CoveredByTarget);
    }

    #[test]
    fn unsafe_extract_reports_part_and_rule() {
        use clx_unifi::ExtractRule;
        let target = parse_pattern("<D>").unwrap();
        let program = Program::new(vec![Branch::new(
            parse_pattern("<D>'-'<D>").unwrap(),
            Expr::concat(vec![konst("x"), StringExpr::Extract { from: 1, to: 9 }]),
        )]);
        let report = analyze_program(&program, &target);
        let unsafe_: Vec<_> = report.by_code(DiagnosticCode::UnsafeExtract).collect();
        assert_eq!(unsafe_.len(), 1);
        assert_eq!(
            unsafe_[0].evidence,
            Evidence::ExtractBounds {
                part: 1,
                from: 1,
                to: 9,
                pattern_len: 3,
                rule: ExtractRule::PastEnd,
            }
        );
        assert!(!report.facts[0].extract_safe);
        // Conformance is skipped for the unsafe branch: no CLX006 noise.
        assert!(report
            .by_code(DiagnosticCode::UnprovenConformance)
            .next()
            .is_none());
    }

    #[test]
    fn conformance_sees_through_token_boundaries() {
        // Output <D>2<D>3 vs target <D>5: token-level covers fails, the
        // language-level automaton proves it.
        let target = parse_pattern("<D>5").unwrap();
        let program = Program::new(vec![Branch::new(
            parse_pattern("<D>2'-'<D>3").unwrap(),
            Expr::concat(vec![extract(1), extract(3)]),
        )]);
        let report = analyze_program(&program, &target);
        assert!(report.is_clean(), "{report}");
        assert!(report.facts[0].proven_conforming);
    }

    #[test]
    fn diverging_output_carries_a_witness_the_target_rejects() {
        let target = parse_pattern("<D>3'-'<D>4").unwrap();
        let program = Program::new(vec![Branch::new(
            parse_pattern("<D>+'.'<D>+").unwrap(),
            Expr::concat(vec![extract(1), konst("-"), extract(3)]),
        )]);
        let report = analyze_program(&program, &target);
        let findings: Vec<_> = report
            .by_code(DiagnosticCode::UnprovenConformance)
            .collect();
        assert_eq!(findings.len(), 1);
        let Evidence::OutputDiverges { output, witness } = &findings[0].evidence else {
            panic!("wrong evidence: {:?}", findings[0].evidence);
        };
        assert_eq!(output.to_string(), "<D>+'-'<D>+");
        let witness = witness.as_ref().expect("automaton finds a counterexample");
        assert!(output.matches(witness), "{witness:?}");
        assert!(!target.matches(witness), "{witness:?}");
        assert!(!report.facts[0].proven_conforming);
    }

    #[test]
    fn width_overflow_degrades_to_token_level_checks() {
        let target = parse_pattern("<D>200").unwrap();
        let program = Program::new(vec![identity_branch("<D>100"), identity_branch("<D>100")]);
        let report = analyze_program(&program, &target);
        // CLX000 records the skipped language analysis ...
        let info: Vec<_> = report.by_code(DiagnosticCode::AnalysisIncomplete).collect();
        assert_eq!(info.len(), 1);
        assert!(matches!(
            info[0].evidence,
            Evidence::WidthExceeded { required: 400 }
        ));
        // ... while the token-level fallback still catches the duplicate.
        let shadow: Vec<_> = report.by_code(DiagnosticCode::ShadowedBranch).collect();
        assert_eq!(shadow.len(), 1);
        assert_eq!(shadow[0].branch, Some(1));
    }

    #[test]
    fn telemetry_records_pass_timings_and_code_counters() {
        use clx_telemetry::InMemorySink;
        let sink: Arc<InMemorySink> = Arc::new(InMemorySink::new());
        let dyn_sink: Arc<dyn MetricSink> = Arc::clone(&sink) as Arc<dyn MetricSink>;
        let target = parse_pattern("<D>3").unwrap();
        let program = Program::new(vec![identity_branch("<D>+"), identity_branch("<D>2")]);
        let report = analyze_observed(&program, &target, Some(&dyn_sink));
        assert!(report.has_errors());
        let snapshot = clx_telemetry::MetricSink::snapshot(sink.as_ref());
        assert_eq!(snapshot.counter("engine.analyze.runs"), Some(1));
        assert_eq!(
            snapshot.counter("engine.analyze.diagnostics.clx002"),
            Some(1)
        );
        for span in [
            "engine.analyze.total_ns",
            "engine.analyze.build_ns",
            "engine.analyze.extracts_ns",
            "engine.analyze.reachability_ns",
            "engine.analyze.redundancy_ns",
            "engine.analyze.conformance_ns",
        ] {
            assert!(snapshot.histogram(span).is_some(), "missing span {span}");
        }
    }
}
