//! The diagnostic data model: codes, severities, machine-readable
//! evidence, and the per-program report.

use std::fmt;

use clx_pattern::Pattern;
use clx_unifi::ExtractRule;

/// How serious a diagnostic is.
///
/// Ordered `Info < Warning < Error`: `Error` findings are *proofs* of a
/// defect (the branch can never fire, or a matching row is guaranteed to
/// raise an evaluation error), `Warning` findings are properties the
/// analyzer could not prove (the checks over-approximate, so "cannot
/// prove conforming" is not "proven non-conforming"), and `Info` records
/// analysis limitations (a pass that had to skip or truncate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Analysis bookkeeping; no program defect implied.
    Info,
    /// A property the analyzer could not prove; worth reviewing.
    Warning,
    /// A proven defect: the program should not ship as-is.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One diagnostic code per analysis pass. Codes are stable identifiers
/// (documented in the README's diagnostic-code table) so downstream
/// tooling can filter on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagnosticCode {
    /// `CLX000` — a pass could not run to completion (automaton width
    /// overflow or search budget exceeded); verdicts that depend on it
    /// default to "no finding".
    AnalysisIncomplete,
    /// `CLX001` — the branch can never fire: its language is empty, or
    /// every string it matches is claimed by the union of earlier
    /// branches (with no *single* earlier branch responsible).
    DeadBranch,
    /// `CLX002` — one specific earlier branch matches everything this
    /// branch matches, so first-match semantics starve it.
    ShadowedBranch,
    /// `CLX003` — two live branches share at least one input; which one
    /// fires depends on branch order, so reordering repairs changes
    /// behavior.
    AmbiguousOverlap,
    /// `CLX004` — every string the branch matches already conforms to the
    /// target, so the transform should be the identity (or the branch
    /// dropped).
    RedundantBranch,
    /// `CLX005` — an `Extract` range is out of bounds for the branch's
    /// own pattern: every matching row would raise an evaluation error.
    UnsafeExtract,
    /// `CLX006` — the analyzer could not prove the branch's output always
    /// conforms to the target pattern.
    UnprovenConformance,
}

impl DiagnosticCode {
    /// The stable textual code, e.g. `"CLX002"`.
    pub fn as_str(&self) -> &'static str {
        match self {
            DiagnosticCode::AnalysisIncomplete => "CLX000",
            DiagnosticCode::DeadBranch => "CLX001",
            DiagnosticCode::ShadowedBranch => "CLX002",
            DiagnosticCode::AmbiguousOverlap => "CLX003",
            DiagnosticCode::RedundantBranch => "CLX004",
            DiagnosticCode::UnsafeExtract => "CLX005",
            DiagnosticCode::UnprovenConformance => "CLX006",
        }
    }

    /// The fixed severity of this code's findings.
    pub fn severity(&self) -> Severity {
        match self {
            DiagnosticCode::AnalysisIncomplete => Severity::Info,
            DiagnosticCode::DeadBranch => Severity::Error,
            DiagnosticCode::ShadowedBranch => Severity::Error,
            DiagnosticCode::AmbiguousOverlap => Severity::Warning,
            DiagnosticCode::RedundantBranch => Severity::Warning,
            DiagnosticCode::UnsafeExtract => Severity::Error,
            DiagnosticCode::UnprovenConformance => Severity::Warning,
        }
    }

    /// All codes, in numeric order.
    pub const ALL: [DiagnosticCode; 7] = [
        DiagnosticCode::AnalysisIncomplete,
        DiagnosticCode::DeadBranch,
        DiagnosticCode::ShadowedBranch,
        DiagnosticCode::AmbiguousOverlap,
        DiagnosticCode::RedundantBranch,
        DiagnosticCode::UnsafeExtract,
        DiagnosticCode::UnprovenConformance,
    ];
}

impl fmt::Display for DiagnosticCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Machine-readable evidence backing one diagnostic: enough structure for
/// tooling (the synthesizer's pruning, a future repair UI) to act without
/// parsing messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Evidence {
    /// The branch pattern's language is empty.
    EmptyLanguage,
    /// The union of these earlier branches covers the branch's whole
    /// language (dead branch with no single shadower).
    Unreachable {
        /// Indices of the earlier branches whose union covers this one.
        earlier: Vec<usize>,
    },
    /// This single earlier branch covers the branch's whole language.
    ShadowedBy {
        /// Index of the shadowing branch.
        earlier: usize,
    },
    /// The branch shares `witness` with branch `other`.
    Overlap {
        /// Index of the other (earlier) overlapping branch.
        other: usize,
        /// A concrete input both branches match.
        witness: String,
    },
    /// Every string the branch matches already conforms to the target.
    CoveredByTarget,
    /// Part `part` of the branch expression has an out-of-bounds range.
    ExtractBounds {
        /// Zero-based index of the offending `Extract` within the plan.
        part: usize,
        /// The range's one-based start index.
        from: usize,
        /// The range's one-based (inclusive) end index.
        to: usize,
        /// Token count of the branch's own pattern.
        pattern_len: usize,
        /// Which bounds rule the range broke.
        rule: ExtractRule,
    },
    /// The branch's abstract output pattern is not covered by the target.
    OutputDiverges {
        /// The abstracted output pattern.
        output: Pattern,
        /// An output the branch can produce that the target rejects, when
        /// the automaton search found one (`None` when only the cheaper
        /// cover check failed).
        witness: Option<String>,
    },
    /// The pattern list needs more automaton positions than the limit.
    WidthExceeded {
        /// Positions the pattern list would need.
        required: usize,
    },
    /// A language search gave up after visiting its state budget.
    SearchBudgetExceeded,
}

/// One finding of one analysis pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The pass's stable code.
    pub code: DiagnosticCode,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// The branch the finding is about, or `None` for program-level
    /// findings (e.g. analysis incompleteness).
    pub branch: Option<usize>,
    /// Human-readable one-line description.
    pub message: String,
    /// Machine-readable backing evidence.
    pub evidence: Evidence,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.branch {
            Some(b) => write!(
                f,
                "{} [{}] branch {}: {}",
                self.severity, self.code, b, self.message
            ),
            None => write!(
                f,
                "{} [{}] program: {}",
                self.severity, self.code, self.message
            ),
        }
    }
}

/// Per-branch facts the passes establish along the way. These are the
/// change-impact substrate for incremental re-verification (ROADMAP open
/// item 5): a repair that edits branch i invalidates exactly the facts
/// that mention i.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchFacts {
    /// `false` iff the branch is proven to never fire (dead or shadowed).
    pub reachable: bool,
    /// Every `Extract` is proven in bounds for every matching string.
    pub extract_safe: bool,
    /// The branch's output is proven to always conform to the target.
    pub proven_conforming: bool,
}

/// The full analysis report for one program against one target pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramDiagnostics {
    /// All findings, in pass order (extract safety, reachability,
    /// redundancy, conformance), then branch order within a pass.
    pub diagnostics: Vec<Diagnostic>,
    /// Per-branch facts, indexed like the program's branches.
    pub facts: Vec<BranchFacts>,
}

impl ProgramDiagnostics {
    /// `true` iff any finding is `Error`-severity (what strict-mode
    /// compilation rejects on).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The `Error`-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// The `Warning`-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// Findings about branch `index`.
    pub fn for_branch(&self, index: usize) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.branch == Some(index))
    }

    /// Findings with the given code.
    pub fn by_code(&self, code: DiagnosticCode) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// The facts for branch `index`.
    pub fn branch_facts(&self, index: usize) -> BranchFacts {
        self.facts[index]
    }

    /// `true` when no pass found anything.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

impl fmt::Display for ProgramDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return write!(f, "no findings ({} branches analyzed)", self.facts.len());
        }
        // Most severe first; pass order is preserved within a severity.
        let mut by_severity: Vec<&Diagnostic> = self.diagnostics.iter().collect();
        by_severity.sort_by_key(|d| std::cmp::Reverse(d.severity));
        for (i, d) in by_severity.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_severities_fixed() {
        let rendered: Vec<&str> = DiagnosticCode::ALL.iter().map(|c| c.as_str()).collect();
        assert_eq!(
            rendered,
            ["CLX000", "CLX001", "CLX002", "CLX003", "CLX004", "CLX005", "CLX006"]
        );
        assert_eq!(DiagnosticCode::DeadBranch.severity(), Severity::Error);
        assert_eq!(DiagnosticCode::ShadowedBranch.severity(), Severity::Error);
        assert_eq!(DiagnosticCode::UnsafeExtract.severity(), Severity::Error);
        assert_eq!(
            DiagnosticCode::AmbiguousOverlap.severity(),
            Severity::Warning
        );
        assert_eq!(
            DiagnosticCode::RedundantBranch.severity(),
            Severity::Warning
        );
        assert_eq!(
            DiagnosticCode::UnprovenConformance.severity(),
            Severity::Warning
        );
        assert_eq!(
            DiagnosticCode::AnalysisIncomplete.severity(),
            Severity::Info
        );
    }

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }

    #[test]
    fn display_names_code_branch_and_severity() {
        let d = Diagnostic {
            code: DiagnosticCode::ShadowedBranch,
            severity: DiagnosticCode::ShadowedBranch.severity(),
            branch: Some(2),
            message: "never fires".into(),
            evidence: Evidence::ShadowedBy { earlier: 0 },
        };
        let s = d.to_string();
        assert!(
            s.contains("error") && s.contains("CLX002") && s.contains("branch 2"),
            "{s}"
        );
    }
}
