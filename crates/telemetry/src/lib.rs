//! # clx-telemetry
//!
//! The metrics and tracing plane for the CLX workspace: a [`MetricSink`]
//! trait (counters, gauges, fixed-bucket latency histograms), a
//! lock-free-ish [`InMemorySink`] that aggregates in atomics, a
//! [`NoopSink`], lightweight [`Span`] timing guards, and a
//! [`TelemetrySnapshot`] export with deterministic JSON and
//! Prometheus-text renderers.
//!
//! # The disabled-path overhead guarantee
//!
//! Every instrumented layer in the workspace holds its sink as an
//! `Option<Arc<dyn MetricSink>>` defaulting to `None`. With no sink
//! attached the instrumentation compiles down to a single branch on that
//! `Option` — **no clock is read, no atomic is touched, no allocation
//! happens**. [`Span::start`] with `None` never calls
//! [`Instant::now`], and hot loops keep plain `u64` counters that are
//! only published to the sink at chunk boundaries. The
//! `benches/telemetry_overhead.rs` benchmark in `clx-bench` records the
//! measured cost of each configuration honestly.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use clx_telemetry::{InMemorySink, MetricSink, Span};
//!
//! let sink: Arc<dyn MetricSink> = Arc::new(InMemorySink::new());
//! sink.counter("cache.hits", 3);
//! sink.gauge("arena.bytes", 4096);
//! {
//!     let _span = Span::start(Some(&sink), "phase.compile_ns");
//!     // ... timed work ...
//! }
//! let snap = sink.snapshot();
//! assert_eq!(snap.counter("cache.hits"), Some(3));
//! assert_eq!(snap.gauge("arena.bytes"), Some(4096));
//! assert_eq!(snap.histogram("phase.compile_ns").unwrap().count, 1);
//! println!("{}", snap.to_json());
//! println!("{}", snap.to_prometheus());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Number of fixed power-of-two histogram buckets. Bucket `i` holds
/// values whose bit length is `i` — i.e. bucket 0 holds the value `0`,
/// bucket `i ≥ 1` holds `2^(i-1) ..= 2^i - 1` — so 65 buckets cover the
/// entire `u64` range with no configuration.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A destination for metrics emitted by the instrumented CLX layers.
///
/// Implementations must be cheap and thread-safe: hot paths call
/// [`counter`](MetricSink::counter) and
/// [`observe`](MetricSink::observe) at chunk boundaries, potentially
/// from several threads at once.
pub trait MetricSink: Send + Sync + std::fmt::Debug {
    /// Add `delta` to the monotonic counter `name`.
    fn counter(&self, name: &'static str, delta: u64);

    /// Set the gauge `name` to `value` (last write wins).
    fn gauge(&self, name: &'static str, value: u64);

    /// Record one sample of `value` into the histogram `name`. Spans
    /// report elapsed nanoseconds here; throughput metrics report e.g.
    /// rows per second.
    fn observe(&self, name: &'static str, value: u64);

    /// Export everything recorded so far. Sinks that do not aggregate
    /// (like [`NoopSink`]) return an empty snapshot.
    fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::default()
    }
}

/// A sink that discards every metric. Attaching it exercises the
/// telemetry call sites (clock reads, counter flushes) without
/// retaining anything — useful for measuring instrumentation overhead
/// and for the byte-identity property tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl NoopSink {
    /// A new discard-everything sink.
    pub fn new() -> Self {
        NoopSink
    }
}

impl MetricSink for NoopSink {
    fn counter(&self, _name: &'static str, _delta: u64) {}
    fn gauge(&self, _name: &'static str, _value: u64) {}
    fn observe(&self, _name: &'static str, _value: u64) {}
}

/// A fixed-bucket histogram aggregated entirely in atomics.
///
/// Buckets are powers of two indexed by bit length (see
/// [`HISTOGRAM_BUCKETS`]), so recording is a `leading_zeros` plus one
/// `fetch_add` — no locks, no allocation, no configuration. Percentile
/// queries resolve to the selected bucket's inclusive upper bound
/// clamped to the observed `[min, max]`, which makes single-sample and
/// single-bucket percentiles exact and keeps renders deterministic.
#[derive(Debug)]
struct AtomicHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> Self {
        AtomicHistogram {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        let idx = (u64::BITS - value.leading_zeros()) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn summary(&self) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let min = if count == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        };
        let max = self.max.load(Ordering::Relaxed);
        let percentile = |p: u64| -> u64 {
            if count == 0 {
                return 0;
            }
            // 1-based rank of the requested percentile, never below 1.
            let rank = (count * p).div_ceil(100).max(1);
            let mut seen = 0u64;
            for (idx, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    // Inclusive upper bound of bucket `idx`, clamped to
                    // the observed range. Bucket 64 tops out at
                    // `u64::MAX` (2^64 - 1 does not fit a shift).
                    let upper = match idx {
                        0 => 0,
                        64.. => u64::MAX,
                        _ => (1u64 << idx) - 1,
                    };
                    return upper.clamp(min, max);
                }
            }
            max
        };
        HistogramSummary {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min,
            max,
            p50: percentile(50),
            p95: percentile(95),
            p99: percentile(99),
        }
    }
}

/// An in-process aggregating sink: counters and gauges are single
/// atomics, histograms are [`HISTOGRAM_BUCKETS`] fixed power-of-two
/// buckets. The per-name registry is behind an `RwLock`, but the hot
/// path takes only the *read* lock plus relaxed atomic ops; the write
/// lock is held once per metric name, ever.
#[derive(Debug, Default)]
pub struct InMemorySink {
    counters: RwLock<HashMap<&'static str, Arc<AtomicU64>>>,
    gauges: RwLock<HashMap<&'static str, Arc<AtomicU64>>>,
    histograms: RwLock<HashMap<&'static str, Arc<AtomicHistogram>>>,
}

impl InMemorySink {
    /// A new empty sink.
    pub fn new() -> Self {
        InMemorySink::default()
    }

    /// A new empty sink already wrapped for attaching to sessions and
    /// streams.
    pub fn shared() -> Arc<Self> {
        Arc::new(InMemorySink::new())
    }

    fn cell(
        registry: &RwLock<HashMap<&'static str, Arc<AtomicU64>>>,
        name: &'static str,
    ) -> Arc<AtomicU64> {
        if let Some(cell) = registry.read().expect("telemetry lock").get(name) {
            return Arc::clone(cell);
        }
        let mut map = registry.write().expect("telemetry lock");
        Arc::clone(
            map.entry(name)
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    fn histogram_cell(&self, name: &'static str) -> Arc<AtomicHistogram> {
        if let Some(h) = self.histograms.read().expect("telemetry lock").get(name) {
            return Arc::clone(h);
        }
        let mut map = self.histograms.write().expect("telemetry lock");
        Arc::clone(
            map.entry(name)
                .or_insert_with(|| Arc::new(AtomicHistogram::new())),
        )
    }
}

impl MetricSink for InMemorySink {
    fn counter(&self, name: &'static str, delta: u64) {
        Self::cell(&self.counters, name).fetch_add(delta, Ordering::Relaxed);
    }

    fn gauge(&self, name: &'static str, value: u64) {
        Self::cell(&self.gauges, name).store(value, Ordering::Relaxed);
    }

    fn observe(&self, name: &'static str, value: u64) {
        self.histogram_cell(name).record(value);
    }

    fn snapshot(&self) -> TelemetrySnapshot {
        let counters = self
            .counters
            .read()
            .expect("telemetry lock")
            .iter()
            .map(|(&k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("telemetry lock")
            .iter()
            .map(|(&k, v)| (k.to_string(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("telemetry lock")
            .iter()
            .map(|(&k, h)| (k.to_string(), h.summary()))
            .collect();
        TelemetrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// An RAII timing guard: records the elapsed wall-clock nanoseconds
/// into the named histogram when dropped.
///
/// Constructed from an `Option<&Arc<dyn MetricSink>>` so the
/// hot-path call site is a single expression; with `None` the guard is
/// inert and **no clock is read at all** — the disabled-path guarantee.
#[derive(Debug)]
pub struct Span {
    active: Option<(Arc<dyn MetricSink>, &'static str, Instant)>,
}

impl Span {
    /// Start timing `name` against `sink`; `None` produces an inert
    /// guard without touching the clock.
    pub fn start(sink: Option<&Arc<dyn MetricSink>>, name: &'static str) -> Self {
        Span {
            active: sink.map(|s| (Arc::clone(s), name, Instant::now())),
        }
    }

    /// An inert span: drops without recording anything.
    pub fn disabled() -> Self {
        Span { active: None }
    }

    /// Whether this span will record on drop.
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((sink, name, start)) = self.active.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            sink.observe(name, nanos);
        }
    }
}

/// The aggregate of one histogram: sample count, running sum, observed
/// range, and bucket-resolution percentiles. All values are exact for
/// counts/sums; percentiles resolve to the bucket upper bound clamped
/// to `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples (wrapping on overflow).
    pub sum: u64,
    /// Smallest recorded sample (0 when empty).
    pub min: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
    /// 50th percentile at bucket resolution.
    pub p50: u64,
    /// 95th percentile at bucket resolution.
    pub p95: u64,
    /// 99th percentile at bucket resolution.
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean sample value, rounded down; 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// A point-in-time export of everything a sink has aggregated, with
/// deterministic (sorted-by-name) ordering so renders are stable and
/// golden-testable.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TelemetrySnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl TelemetrySnapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The value of counter `name`, if it was ever incremented.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// The value of gauge `name`, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// The summary of histogram `name`, if it ever received a sample.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.get(name)
    }

    /// Render as a deterministic JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}`, keys
    /// sorted, no whitespace. Metric names contain only
    /// `[a-z0-9._]` by workspace convention, but arbitrary names are
    /// escaped correctly.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_scalar_entries(&mut out, &self.counters);
        out.push_str("},\"gauges\":{");
        push_scalar_entries(&mut out, &self.gauges);
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            let _ = write!(
                out,
                ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.p50,
                h.p95,
                h.p99
            );
        }
        out.push_str("}}");
        out
    }

    /// Render in the Prometheus text exposition format. Metric names
    /// are sanitized (`.` and any other non-`[a-zA-Z0-9_:]` byte become
    /// `_`); histograms are rendered as summaries with `quantile`
    /// labels plus `_sum`/`_count` series.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, value) in &self.gauges {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        }
        for (name, h) in &self.histograms {
            let name = prometheus_name(name);
            let _ = writeln!(out, "# TYPE {name} summary");
            let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", h.p50);
            let _ = writeln!(out, "{name}{{quantile=\"0.95\"}} {}", h.p95);
            let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {}", h.p99);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }
}

fn push_scalar_entries(out: &mut String, map: &BTreeMap<String, u64>) {
    for (i, (name, value)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_string(out, name);
        let _ = write!(out, ":{value}");
    }
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn prometheus_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink() -> InMemorySink {
        InMemorySink::new()
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let s = sink();
        s.counter("c.hits", 1);
        s.counter("c.hits", 41);
        s.gauge("g.bytes", 100);
        s.gauge("g.bytes", 7);
        let snap = s.snapshot();
        assert_eq!(snap.counter("c.hits"), Some(42));
        assert_eq!(snap.gauge("g.bytes"), Some(7));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn empty_histogram_summary_is_all_zero() {
        let h = AtomicHistogram::new();
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn one_sample_percentiles_are_exact() {
        // The clamp to [min, max] makes every percentile of a
        // single-sample histogram exactly that sample, even though the
        // bucket upper bound would be coarser.
        for v in [0u64, 1, 2, 3, 1000, 12_345, u64::MAX] {
            let h = AtomicHistogram::new();
            h.record(v);
            let s = h.summary();
            assert_eq!((s.count, s.min, s.max), (1, v, v));
            assert_eq!(s.p50, v, "p50 of single sample {v}");
            assert_eq!(s.p95, v);
            assert_eq!(s.p99, v);
            assert_eq!(s.sum, v);
        }
    }

    #[test]
    fn bucket_boundary_percentiles() {
        // 2^k and 2^k - 1 land in adjacent buckets: 100 samples of 255
        // and one of 256 must keep p50 at 255 (bucket [128, 255]) and
        // resolve high percentiles to max = 256.
        let h = AtomicHistogram::new();
        for _ in 0..100 {
            h.record(255);
        }
        h.record(256);
        let s = h.summary();
        assert_eq!(s.p50, 255);
        assert_eq!(s.p95, 255);
        assert_eq!(s.p99, 255);
        assert_eq!(s.max, 256);
        assert_eq!(s.min, 255);
        assert_eq!(s.count, 101);
    }

    #[test]
    fn percentiles_are_bucket_upper_bounds_clamped_to_range() {
        // 90 fast samples (~100ns bucket [64,127]) and 10 slow ones
        // (~1e6): p50 reads the fast bucket's upper bound, p95/p99 the
        // slow bucket's, clamped to the observed max.
        let h = AtomicHistogram::new();
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.summary();
        assert_eq!(s.p50, 127); // upper bound of bucket [64, 127]
        assert_eq!(s.p95, 1_000_000); // bucket upper 2^20-1 clamped to max
        assert_eq!(s.p99, 1_000_000);
        assert_eq!(s.min, 100);
        assert_eq!(s.max, 1_000_000);
    }

    #[test]
    fn zero_values_use_the_zero_bucket() {
        let h = AtomicHistogram::new();
        h.record(0);
        h.record(0);
        h.record(0);
        let s = h.summary();
        assert_eq!(s.p50, 0);
        assert_eq!(s.p99, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn noop_sink_snapshot_is_empty() {
        let s = NoopSink::new();
        s.counter("c", 10);
        s.gauge("g", 10);
        s.observe("h", 10);
        assert!(s.snapshot().is_empty());
    }

    #[test]
    fn span_records_elapsed_nanos() {
        let sink: Arc<dyn MetricSink> = Arc::new(InMemorySink::new());
        {
            let span = Span::start(Some(&sink), "work_ns");
            assert!(span.is_active());
        }
        let h = sink.snapshot();
        let s = h.histogram("work_ns").expect("span recorded");
        assert_eq!(s.count, 1);
    }

    #[test]
    fn disabled_span_records_nothing() {
        let sink: Arc<dyn MetricSink> = Arc::new(InMemorySink::new());
        {
            let span = Span::start(None, "work_ns");
            assert!(!span.is_active());
            drop(span);
            let _inert = Span::disabled();
        }
        assert!(sink.snapshot().is_empty());
    }

    #[test]
    fn snapshot_json_golden() {
        let s = sink();
        s.counter("cache.hits", 42);
        s.counter("cache.misses", 7);
        s.gauge("arena.bytes", 4096);
        s.observe("chunk_ns", 100);
        s.observe("chunk_ns", 100);
        let json = s.snapshot().to_json();
        assert_eq!(
            json,
            "{\"counters\":{\"cache.hits\":42,\"cache.misses\":7},\
             \"gauges\":{\"arena.bytes\":4096},\
             \"histograms\":{\"chunk_ns\":{\"count\":2,\"sum\":200,\"min\":100,\
             \"max\":100,\"mean\":100,\"p50\":100,\"p95\":100,\"p99\":100}}}"
        );
    }

    #[test]
    fn snapshot_prometheus_golden() {
        let s = sink();
        s.counter("cache.hits", 42);
        s.gauge("arena.bytes", 4096);
        s.observe("phase.compile_ns", 1000);
        let text = s.snapshot().to_prometheus();
        assert_eq!(
            text,
            "# TYPE cache_hits counter\n\
             cache_hits 42\n\
             # TYPE arena_bytes gauge\n\
             arena_bytes 4096\n\
             # TYPE phase_compile_ns summary\n\
             phase_compile_ns{quantile=\"0.5\"} 1000\n\
             phase_compile_ns{quantile=\"0.95\"} 1000\n\
             phase_compile_ns{quantile=\"0.99\"} 1000\n\
             phase_compile_ns_sum 1000\n\
             phase_compile_ns_count 1\n"
        );
    }

    #[test]
    fn json_escapes_hostile_names() {
        let mut snap = TelemetrySnapshot::default();
        snap.counters.insert("we\"ird\\name\n".to_string(), 1);
        let json = snap.to_json();
        assert!(json.contains("we\\\"ird\\\\name\\u000a"));
    }

    #[test]
    fn prometheus_sanitizes_names() {
        assert_eq!(
            prometheus_name("engine.stream.chunk_ns"),
            "engine_stream_chunk_ns"
        );
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name("a-b c"), "a_b_c");
    }

    #[test]
    fn snapshot_ordering_is_deterministic() {
        let s = sink();
        s.counter("z.last", 1);
        s.counter("a.first", 1);
        s.counter("m.mid", 1);
        let snap = s.snapshot();
        let names: Vec<&str> = snap.counters.keys().map(String::as_str).collect();
        assert_eq!(names, ["a.first", "m.mid", "z.last"]);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let s = Arc::new(InMemorySink::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        s.counter("c", 1);
                        s.observe("h", i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.counter("c"), Some(4000));
        assert_eq!(snap.histogram("h").unwrap().count, 4000);
    }
}
