//! The 47-task user-effort simulation of §7.4: run the simulated CLX,
//! FlashFill and RegexReplace users over the whole benchmark suite and
//! aggregate the Step metric into Table 7, Figure 15, Figure 16 and the
//! Appendix E statistics.

use clx_datagen::{benchmark_suite, BenchmarkTask, TaskSource};

use crate::clx_user::{run_clx_user, ClxTrace};
use crate::flashfill_user::{run_flashfill_user, FlashFillTrace};
use crate::regex_replace::{run_regex_replace_user, RegexReplaceTrace};

/// Interaction budget for the example/operation loops of the baselines.
const MAX_BASELINE_INTERACTIONS: usize = 25;

/// The outcome of all three systems on one benchmark task.
#[derive(Debug, Clone)]
pub struct TaskResult {
    /// Task id (1..=47).
    pub id: usize,
    /// Task name.
    pub name: String,
    /// Task source corpus.
    pub source: TaskSource,
    /// CLX trace.
    pub clx: ClxTrace,
    /// FlashFill trace.
    pub flashfill: FlashFillTrace,
    /// RegexReplace trace.
    pub regex_replace: RegexReplaceTrace,
}

impl TaskResult {
    /// CLX Steps (selection + repair + punishment).
    pub fn clx_steps(&self) -> usize {
        self.clx.steps()
    }

    /// FlashFill Steps (examples + punishment).
    pub fn flashfill_steps(&self) -> usize {
        self.flashfill.steps()
    }

    /// RegexReplace Steps (2 per operation + punishment).
    pub fn regex_replace_steps(&self) -> usize {
        self.regex_replace.steps()
    }
}

/// Run one task through all three simulated users.
pub fn run_task(task: &BenchmarkTask) -> TaskResult {
    let target = task.target_pattern();
    let clx = run_clx_user(&task.inputs, &task.expected, &target);
    let flashfill = run_flashfill_user(&task.inputs, &task.expected, MAX_BASELINE_INTERACTIONS);
    let (regex_replace, _) = run_regex_replace_user(
        &task.inputs,
        &task.expected,
        &target,
        MAX_BASELINE_INTERACTIONS,
    );
    TaskResult {
        id: task.id,
        name: task.name.clone(),
        source: task.source,
        clx,
        flashfill,
        regex_replace,
    }
}

/// Run the full 47-task simulation.
pub fn run_simulation(seed: u64) -> Vec<TaskResult> {
    benchmark_suite(seed).iter().map(run_task).collect()
}

/// One comparison row of Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EffortComparison {
    /// Tasks where CLX needed fewer Steps.
    pub clx_wins: usize,
    /// Tasks where the Step counts tie.
    pub ties: usize,
    /// Tasks where CLX needed more Steps.
    pub clx_loses: usize,
}

/// Table 7: CLX vs FlashFill and CLX vs RegexReplace win/tie/loss counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table7 {
    /// Comparison against FlashFill.
    pub vs_flashfill: EffortComparison,
    /// Comparison against RegexReplace.
    pub vs_regex_replace: EffortComparison,
}

/// Compute Table 7 from the simulation results.
pub fn table7(results: &[TaskResult]) -> Table7 {
    let compare = |other: fn(&TaskResult) -> usize| {
        let mut cmp = EffortComparison {
            clx_wins: 0,
            ties: 0,
            clx_loses: 0,
        };
        for r in results {
            let clx = r.clx_steps();
            let o = other(r);
            if clx < o {
                cmp.clx_wins += 1;
            } else if clx == o {
                cmp.ties += 1;
            } else {
                cmp.clx_loses += 1;
            }
        }
        cmp
    };
    Table7 {
        vs_flashfill: compare(TaskResult::flashfill_steps),
        vs_regex_replace: compare(TaskResult::regex_replace_steps),
    }
}

/// Expressivity counts (§7.4): how many of the 47 tasks each system solves
/// perfectly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expressivity {
    /// Tasks CLX transforms perfectly.
    pub clx: usize,
    /// Tasks FlashFill transforms perfectly.
    pub flashfill: usize,
    /// Tasks RegexReplace transforms perfectly.
    pub regex_replace: usize,
    /// Total number of tasks.
    pub total: usize,
}

/// Compute the expressivity counts.
pub fn expressivity(results: &[TaskResult]) -> Expressivity {
    Expressivity {
        clx: results.iter().filter(|r| r.clx.perfect).count(),
        flashfill: results.iter().filter(|r| r.flashfill.perfect).count(),
        regex_replace: results.iter().filter(|r| r.regex_replace.perfect).count(),
        total: results.len(),
    }
}

/// Figure 15: per-task speedup of CLX over a baseline (Steps ratio).
pub fn speedups(results: &[TaskResult]) -> Vec<(usize, f64, f64)> {
    results
        .iter()
        .map(|r| {
            let clx = r.clx_steps().max(1) as f64;
            (
                r.id,
                r.flashfill_steps() as f64 / clx,
                r.regex_replace_steps() as f64 / clx,
            )
        })
        .collect()
}

/// One point of the Figure 16 CDF: the fraction of tasks whose Step count in
/// a given phase is at most `steps`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepCdfPoint {
    /// Step threshold.
    pub steps: usize,
    /// Fraction of tasks with Selection steps <= `steps`.
    pub selection: f64,
    /// Fraction of tasks with Repair (adjust) steps <= `steps`.
    pub adjust: f64,
    /// Fraction of tasks with total steps <= `steps`.
    pub total: f64,
}

/// Figure 16: the CDF of CLX Steps broken down by phase.
pub fn step_cdf(results: &[TaskResult], max_steps: usize) -> Vec<StepCdfPoint> {
    let n = results.len().max(1) as f64;
    (0..=max_steps)
        .map(|steps| StepCdfPoint {
            steps,
            selection: results.iter().filter(|r| r.clx.selections <= steps).count() as f64 / n,
            adjust: results.iter().filter(|r| r.clx.repairs <= steps).count() as f64 / n,
            total: results.iter().filter(|r| r.clx_steps() <= steps).count() as f64 / n,
        })
        .collect()
}

/// The Appendix E statistics about the quality of the initial program and
/// the cost of repair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppendixEStats {
    /// Fraction of tasks whose *initial* (unrepaired) CLX program was already
    /// perfect (the paper reports the complement: "the system still infers an
    /// imperfect transformation about 50% of the time").
    pub initial_perfect_fraction: f64,
    /// Among tasks whose initial program was imperfect *and which the user
    /// eventually repaired to a perfect program*, the fraction fixed with at
    /// most one repair (the paper reports 75%; our reconstructed suite
    /// over-represents the paper's hardest "popl-13.ecr"-style affiliation
    /// tasks, which need several repairs — see EXPERIMENTS.md).
    pub single_repair_fraction: f64,
    /// Fraction of tasks where CLX reached a perfect program within two total
    /// Steps (the paper reports about 79%).
    pub perfect_within_two_steps: f64,
    /// Fraction of tasks needing exactly one Selection step (about 79% in the
    /// paper).
    pub single_selection_fraction: f64,
}

/// Compute the Appendix E statistics.
pub fn appendix_e(results: &[TaskResult]) -> AppendixEStats {
    let n = results.len().max(1) as f64;
    let initial_perfect = results.iter().filter(|r| r.clx.initial_perfect).count();
    let imperfect: Vec<&TaskResult> = results
        .iter()
        .filter(|r| !r.clx.initial_perfect && r.clx.perfect)
        .collect();
    let single_repair = imperfect.iter().filter(|r| r.clx.repairs <= 1).count();
    let perfect_within_two = results
        .iter()
        .filter(|r| r.clx.perfect && r.clx_steps() <= 2)
        .count();
    let single_selection = results.iter().filter(|r| r.clx.selections == 1).count();
    AppendixEStats {
        initial_perfect_fraction: initial_perfect as f64 / n,
        single_repair_fraction: if imperfect.is_empty() {
            1.0
        } else {
            single_repair as f64 / imperfect.len() as f64
        },
        perfect_within_two_steps: perfect_within_two as f64 / n,
        single_selection_fraction: single_selection as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Running the full suite takes a few seconds, so the aggregate checks
    /// share one simulation run.
    fn results() -> &'static [TaskResult] {
        use std::sync::OnceLock;
        static RESULTS: OnceLock<Vec<TaskResult>> = OnceLock::new();
        RESULTS.get_or_init(|| run_simulation(0))
    }

    #[test]
    fn simulation_covers_all_47_tasks() {
        let results = results();
        assert_eq!(results.len(), 47);
        let ids: Vec<usize> = results.iter().map(|r| r.id).collect();
        assert_eq!(ids, (1..=47).collect::<Vec<_>>());
    }

    #[test]
    fn expressivity_matches_the_papers_shape() {
        let e = expressivity(results());
        // Paper: CLX 42/47 (~90%), FlashFill 45/47 (~96%), RegexReplace 46/47.
        assert!(e.clx * 10 >= e.total * 8, "CLX solves >= 80%: {e:?}");
        assert!(
            e.flashfill * 10 >= e.total * 8,
            "FlashFill solves >= 80%: {e:?}"
        );
        assert!(
            e.regex_replace >= e.clx.saturating_sub(3),
            "RegexReplace coverage is at least comparable: {e:?}"
        );
        assert_eq!(e.total, 47);
    }

    #[test]
    fn table7_clx_rarely_loses() {
        let t = table7(results());
        let total = 47;
        assert_eq!(
            t.vs_flashfill.clx_wins + t.vs_flashfill.ties + t.vs_flashfill.clx_loses,
            total
        );
        // Paper: CLX wins or ties 72% of tasks vs FlashFill and 96% vs
        // RegexReplace. Require the same qualitative outcome.
        assert!(
            t.vs_flashfill.clx_wins + t.vs_flashfill.ties > t.vs_flashfill.clx_loses,
            "{t:?}"
        );
        assert!(
            (t.vs_regex_replace.clx_wins + t.vs_regex_replace.ties) * 10 >= total * 9,
            "{t:?}"
        );
    }

    #[test]
    fn speedups_are_positive_and_indexed_by_task() {
        let s = speedups(results());
        assert_eq!(s.len(), 47);
        for (id, vs_ff, vs_rr) in s {
            assert!((1..=47).contains(&id));
            assert!(vs_ff > 0.0);
            assert!(vs_rr > 0.0);
        }
    }

    #[test]
    fn step_cdf_is_monotone_and_bounded() {
        let cdf = step_cdf(results(), 5);
        assert_eq!(cdf.len(), 6);
        for w in cdf.windows(2) {
            assert!(w[0].selection <= w[1].selection);
            assert!(w[0].adjust <= w[1].adjust);
            assert!(w[0].total <= w[1].total);
        }
        let last = cdf.last().unwrap();
        assert!(last.selection <= 1.0 && last.adjust <= 1.0 && last.total <= 1.0);
        // Nearly all tasks need just one selection (paper: ~79% need one
        // target pattern; every task here labels exactly one).
        assert!(cdf[1].selection > 0.9);
    }

    #[test]
    fn appendix_e_statistics_are_sane() {
        let stats = appendix_e(results());
        assert!((0.0..=1.0).contains(&stats.initial_perfect_fraction));
        assert!((0.0..=1.0).contains(&stats.single_repair_fraction));
        assert!((0.0..=1.0).contains(&stats.perfect_within_two_steps));
        // Repairable tasks usually need few repairs (paper: 75% need one;
        // our suite over-represents the multi-repair affiliation tasks, so
        // the bound here is looser).
        assert!(
            stats.single_repair_fraction >= 0.4,
            "single repair fraction too low: {stats:?}"
        );
        // A majority of tasks finish within two steps (paper: ~79%).
        assert!(
            stats.perfect_within_two_steps >= 0.5,
            "two-step fraction too low: {stats:?}"
        );
        assert!(stats.single_selection_fraction > 0.9);
    }
}
