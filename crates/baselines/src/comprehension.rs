//! The comprehension (explainability) study of §7.3, reproduced as a
//! *transferability proxy*.
//!
//! The paper asks nine participants "given input x, what will the system
//! output?" after they finish a task with CLX, FlashFill or RegexReplace
//! (Appendix C). A participant answers correctly when their mental model of
//! the inferred transformation matches what the system actually does.
//!
//! The proxy models each user's prediction from what that system exposes:
//!
//! * **CLX** and **RegexReplace** users can read (or wrote) the regexp
//!   `Replace` operations, so their prediction *is* the operations' result —
//!   they are correct whenever reading the program suffices, which is
//!   always, because the explained program is the executed program.
//! * **FlashFill** users never see the program; their best prediction is the
//!   *intended* transformation ("it will do the right thing"), which is
//!   correct only when the opaque program happens to behave as intended on
//!   the quiz input — exactly the gap the paper's anecdote and Figure 13
//!   highlight.

use clx_core::ClxSession;
use clx_datagen::{explainability_tasks, BenchmarkTask};
use clx_flashfill::{Example, FlashFill};

use crate::flashfill_user::run_flashfill_user;
use crate::regex_replace::run_regex_replace_user;

/// One quiz question: an unseen input and the output a user *intends* the
/// transformation to produce (the "right answer" of Appendix C).
#[derive(Debug, Clone)]
pub struct QuizQuestion {
    /// The probe input.
    pub input: String,
    /// The intended (semantically correct) output.
    pub intended: String,
}

/// Correct-answer rates for one task (Figure 13 bars).
#[derive(Debug, Clone, PartialEq)]
pub struct ComprehensionResult {
    /// 1-based task id (Table 5).
    pub task: usize,
    /// Correct rate for RegexReplace users.
    pub regex_replace: f64,
    /// Correct rate for FlashFill users.
    pub flashfill: f64,
    /// Correct rate for CLX users.
    pub clx: f64,
}

/// The Appendix C quiz questions for the three Table 5 tasks.
pub fn quiz_questions(task: usize) -> Vec<QuizQuestion> {
    match task {
        1 => vec![
            QuizQuestion {
                input: "Barack Obama".into(),
                intended: "Obama, B.".into(),
            },
            QuizQuestion {
                input: "Barack Hussein Obama".into(),
                intended: "Obama, B.".into(),
            },
            QuizQuestion {
                input: "Obama, Barack Hussein".into(),
                intended: "Obama, B.".into(),
            },
        ],
        2 => vec![
            QuizQuestion {
                input: "155 Main St, San Diego, CA 92173".into(),
                intended: "CA 92173".into(),
            },
            QuizQuestion {
                input: "14820 NE 36th Street, Redmond, WA 98052".into(),
                intended: "WA 98052".into(),
            },
            QuizQuestion {
                // No state / zip at all: the intended behaviour is to leave
                // the value alone (there is nothing to extract).
                input: "12 South Michigan Ave, Chicago".into(),
                intended: "12 South Michigan Ave, Chicago".into(),
            },
        ],
        3 => vec![
            QuizQuestion {
                input: "844.332.2820".into(),
                intended: "(844) 332-2820".into(),
            },
            QuizQuestion {
                input: "+1 844-332-2820".into(),
                intended: "(844) 332-2820".into(),
            },
            QuizQuestion {
                input: "844-332-2820 ext57".into(),
                intended: "(844) 332-2820".into(),
            },
        ],
        other => panic!("unknown explainability task {other}"),
    }
}

/// Run the comprehension study over the three Table 5 tasks.
pub fn comprehension_study(seed: u64) -> Vec<ComprehensionResult> {
    explainability_tasks(seed)
        .iter()
        .map(comprehension_for_task)
        .collect()
}

fn comprehension_for_task(task: &BenchmarkTask) -> ComprehensionResult {
    let questions = quiz_questions(task.id);
    let target = task.target_pattern();

    // --- CLX: the user reads the explained Replace operations. ---
    let session = ClxSession::new(task.inputs.clone())
        .label(target.clone())
        .expect("non-empty target");
    let explanation = session.explanation().expect("explainable program");
    let clx_correct = questions
        .iter()
        .filter(|q| {
            let actual = explanation.apply(&q.input);
            // The CLX user's prediction is obtained by reading the Replace
            // operations, i.e. it equals the actual behaviour; it is counted
            // correct when that prediction is also the intended answer OR
            // the user correctly predicts "left unchanged" for inputs no
            // operation covers.
            let prediction = actual.clone();
            prediction == q.intended || (actual == q.input && prediction == actual)
        })
        .count();

    // --- FlashFill: the user predicts the intended output; the program may
    // disagree. ---
    let ff_trace = run_flashfill_user(&task.inputs, &task.expected, 20);
    let engine = FlashFill::new();
    // Rebuild the examples the simulated user ended up providing by
    // re-running the interaction loop (cheap) — the trace records how many.
    let examples = reconstruct_flashfill_examples(&task.inputs, &task.expected, ff_trace.examples);
    let ff_program = engine.learn(&examples);
    let ff_correct = questions
        .iter()
        .filter(|q| {
            let actual = match &ff_program {
                Some(p) => p.apply_or_passthrough(&q.input),
                None => q.input.clone(),
            };
            actual == q.intended
        })
        .count();

    // --- RegexReplace: the user wrote the operations themselves. ---
    let (_, ops) = run_regex_replace_user(&task.inputs, &task.expected, &target, 20);
    let rr_correct = questions
        .iter()
        .filter(|q| {
            let actual = ops
                .iter()
                .find_map(|op| op.apply(&q.input))
                .unwrap_or_else(|| q.input.clone());
            let prediction = actual.clone();
            prediction == q.intended || (actual == q.input && prediction == actual)
        })
        .count();

    let total = questions.len() as f64;
    ComprehensionResult {
        task: task.id,
        regex_replace: rr_correct as f64 / total,
        flashfill: ff_correct as f64 / total,
        clx: clx_correct as f64 / total,
    }
}

/// Re-run the FlashFill example-providing loop for `n` examples, mirroring
/// [`run_flashfill_user`].
fn reconstruct_flashfill_examples(
    inputs: &[String],
    expected: &[String],
    n: usize,
) -> Vec<Example> {
    let engine = FlashFill::new();
    let mut examples: Vec<Example> = Vec::new();
    let first_wrong = inputs
        .iter()
        .zip(expected)
        .position(|(i, e)| i != e)
        .unwrap_or(0);
    examples.push(Example::new(
        inputs[first_wrong].clone(),
        expected[first_wrong].clone(),
    ));
    while examples.len() < n {
        let outputs = engine.learn_and_apply(&examples, inputs);
        match outputs
            .iter()
            .zip(expected)
            .position(|(got, want)| got != want)
        {
            None => break,
            Some(row) => examples.push(Example::new(inputs[row].clone(), expected[row].clone())),
        }
    }
    examples
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiz_has_three_questions_per_task() {
        for task in 1..=3 {
            assert_eq!(quiz_questions(task).len(), 3);
        }
    }

    #[test]
    #[should_panic(expected = "unknown explainability task")]
    fn unknown_task_panics() {
        quiz_questions(9);
    }

    #[test]
    fn study_reproduces_figure_13_shape() {
        let results = comprehension_study(0);
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!((0.0..=1.0).contains(&r.clx));
            assert!((0.0..=1.0).contains(&r.flashfill));
            assert!((0.0..=1.0).contains(&r.regex_replace));
            // CLX users understand the logic at least as well as FlashFill
            // users on every task.
            assert!(
                r.clx >= r.flashfill,
                "task {}: clx {} < flashfill {}",
                r.task,
                r.clx,
                r.flashfill
            );
        }
        // And on average the gap is large (the paper reports roughly 2x).
        let avg = |f: fn(&ComprehensionResult) -> f64| {
            results.iter().map(f).sum::<f64>() / results.len() as f64
        };
        let clx_avg = avg(|r| r.clx);
        let ff_avg = avg(|r| r.flashfill);
        assert!(
            clx_avg >= 1.5 * ff_avg.max(0.1),
            "expected a large comprehension gap, got CLX {clx_avg:.2} vs FlashFill {ff_avg:.2}"
        );
        // RegexReplace users also understand their own regexes well.
        assert!(avg(|r| r.regex_replace) >= ff_avg);
    }
}
