//! The simulated CLX user (the "lazy approach" of Harris & Gulwani used in
//! §7.4 of the paper): select the target pattern, then verify each suggested
//! atomic transformation plan and repair it when the default is wrong.

use clx_core::{ClxSession, Labelled};
use clx_pattern::Pattern;

/// The trace of one simulated CLX run on one task.
#[derive(Debug, Clone)]
pub struct ClxTrace {
    /// Number of target patterns the user selected (the *Selection* steps).
    pub selections: usize,
    /// Number of source patterns whose default plan had to be repaired (the
    /// *Repair* / *Adjust* steps).
    pub repairs: usize,
    /// Number of source patterns the user verified (each suggested Replace
    /// operation is one verification interaction).
    pub plans_verified: usize,
    /// Number of rows still not matching the ground truth at the end.
    pub failing_rows: usize,
    /// Number of rows in the task.
    pub rows: usize,
    /// Number of pattern clusters shown to the user at labelling time.
    pub patterns_shown: usize,
    /// Whether the final program transformed every row to the ground truth.
    pub perfect: bool,
    /// Whether the *initial* (unrepaired) program was already perfect.
    pub initial_perfect: bool,
}

impl ClxTrace {
    /// The paper's Step metric for CLX: selections + repairs, plus one
    /// punishment step per row the final program still gets wrong (§7.4).
    pub fn steps(&self) -> usize {
        self.selections + self.repairs + self.failing_rows
    }

    /// The number of interactions as defined for Figure 11b: one for the
    /// initial labelling plus one verify-(and-repair) interaction per
    /// suggested atomic transformation plan.
    pub fn interactions(&self) -> usize {
        1 + self.plans_verified
    }
}

/// Run the simulated CLX user on one task.
///
/// `inputs` is the messy column, `expected` the ground truth, and `target`
/// the pattern the user labels. The user:
///
/// 1. labels the target pattern (1 selection);
/// 2. for every suggested source plan, checks its output against the ground
///    truth on that cluster's rows; if wrong, walks the ranked alternatives
///    and picks the first one that fixes the cluster (1 repair);
/// 3. stops — rows that still mismatch count as punishment steps.
pub fn run_clx_user(inputs: &[String], expected: &[String], target: &Pattern) -> ClxTrace {
    let session = ClxSession::new(inputs.to_vec());
    let patterns_shown = session.patterns().len();
    // Labelling consumes the clustered session and unlocks the transform
    // phase — from here on the simulated user drives a `Labelled` session.
    let mut session = session
        .label(target.clone())
        .expect("target pattern must be non-empty");

    let rows = inputs.len();
    let initial_perfect = count_failures(&session, expected) == 0;

    // Verify-and-repair each suggested plan, cluster by cluster.
    let source_patterns: Vec<Pattern> = session
        .synthesis()
        .sources
        .iter()
        .map(|s| s.pattern.clone())
        .collect();
    let plans_verified = source_patterns.len();
    let mut repairs = 0;

    for source in &source_patterns {
        if cluster_failures(&session, expected, source) == 0 {
            continue;
        }
        // The default plan is wrong for this cluster: try the alternatives.
        let alternative_count = session.alternatives(source).map(|a| a.len()).unwrap_or(0);
        let mut fixed = false;
        for choice in 1..alternative_count {
            session.repair(source, choice);
            if cluster_failures(&session, expected, source) == 0 {
                fixed = true;
                break;
            }
        }
        if !fixed {
            // No alternative fixes it: revert to the default plan.
            session.repair(source, 0);
        }
        // Whether or not an alternative worked, the user spent one repair
        // interaction on this source pattern.
        repairs += 1;
    }

    let failing_rows = count_failures(&session, expected);
    ClxTrace {
        selections: 1,
        repairs,
        plans_verified,
        failing_rows,
        rows,
        patterns_shown,
        perfect: failing_rows == 0,
        initial_perfect,
    }
}

/// Number of rows whose final output differs from the ground truth.
fn count_failures(session: &ClxSession<Labelled>, expected: &[String]) -> usize {
    let report = session.apply().expect("evaluating the program");
    report
        .iter_rows()
        .zip(expected)
        .filter(|(row, want)| row.value() != want.as_str())
        .count()
}

/// Number of rows belonging to `source`'s cluster whose output differs from
/// the ground truth.
fn cluster_failures(
    session: &ClxSession<Labelled>,
    expected: &[String],
    source: &Pattern,
) -> usize {
    let report = session.apply().expect("evaluating the program");
    report
        .iter_rows()
        .zip(session.data())
        .zip(expected)
        .filter(|((row, input), want)| {
            source.matches(input) && !row.is_conforming() && row.value() != want.as_str()
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clx_pattern::{parse_pattern, tokenize};

    #[test]
    fn phone_task_needs_no_repairs() {
        let inputs: Vec<String> = vec![
            "(734) 645-8397".into(),
            "(734)586-7252".into(),
            "734-422-8073".into(),
            "734.236.3466".into(),
        ];
        let expected: Vec<String> = vec![
            "734-645-8397".into(),
            "734-586-7252".into(),
            "734-422-8073".into(),
            "734-236-3466".into(),
        ];
        let trace = run_clx_user(&inputs, &expected, &tokenize("734-422-8073"));
        assert!(trace.perfect);
        assert!(trace.initial_perfect);
        assert_eq!(trace.repairs, 0);
        assert_eq!(trace.selections, 1);
        assert_eq!(trace.steps(), 1);
        assert_eq!(trace.interactions(), 1 + trace.plans_verified);
        assert_eq!(trace.rows, 4);
    }

    #[test]
    fn ambiguous_dates_are_fixed_by_repair() {
        // DD/MM/YYYY -> MM-DD-YYYY requires swapping the first two fields;
        // the MDL default often picks the non-swapping plan, which the
        // simulated user repairs.
        let inputs: Vec<String> = vec![
            "25/12/2017".into(),
            "13/04/2018".into(),
            "28/02/2019".into(),
            "12-25-2017".into(),
        ];
        let expected: Vec<String> = vec![
            "12-25-2017".into(),
            "04-13-2018".into(),
            "02-28-2019".into(),
            "12-25-2017".into(),
        ];
        let trace = run_clx_user(&inputs, &expected, &tokenize("12-25-2017"));
        assert!(trace.perfect, "repair should recover the swap: {trace:?}");
        assert!(!trace.initial_perfect);
        assert_eq!(trace.repairs, 1);
        assert_eq!(trace.steps(), 2);
    }

    #[test]
    fn unreachable_rows_become_punishment_steps() {
        let inputs: Vec<String> =
            vec!["N/A".into(), "734-422-8073".into(), "(734) 645-8397".into()];
        let expected: Vec<String> = vec![
            "555-555-5555".into(), // impossible: no digits in the input
            "734-422-8073".into(),
            "734-645-8397".into(),
        ];
        let trace = run_clx_user(&inputs, &expected, &tokenize("734-422-8073"));
        assert!(!trace.perfect);
        assert_eq!(trace.failing_rows, 1);
        assert!(trace.steps() >= 2);
    }

    #[test]
    fn medical_codes_task() {
        let inputs: Vec<String> = vec![
            "CPT-00350".into(),
            "[CPT-00340".into(),
            "[CPT-11536]".into(),
            "CPT115".into(),
        ];
        let expected: Vec<String> = vec![
            "[CPT-00350]".into(),
            "[CPT-00340]".into(),
            "[CPT-11536]".into(),
            "[CPT-115]".into(),
        ];
        let trace = run_clx_user(
            &inputs,
            &expected,
            &parse_pattern("'['<U>+'-'<D>+']'").unwrap(),
        );
        assert!(trace.perfect, "{trace:?}");
        assert_eq!(trace.selections, 1);
    }

    #[test]
    fn patterns_shown_matches_cluster_count() {
        let inputs: Vec<String> = vec![
            "(734) 645-8397".into(),
            "(231) 555-0199".into(),
            "734-422-8073".into(),
        ];
        let expected: Vec<String> = vec![
            "734-645-8397".into(),
            "231-555-0199".into(),
            "734-422-8073".into(),
        ];
        let trace = run_clx_user(&inputs, &expected, &tokenize("734-422-8073"));
        assert_eq!(trace.patterns_shown, 2);
    }
}
