//! An analytical model of user interaction latency.
//!
//! The paper's §7.2/§7.3 numbers come from timing nine human participants.
//! Humans are not available inside a test harness, so the experiments
//! replay the *simulated* interaction traces (which systems compute exactly
//! — how many rows had to be scanned, how many examples typed, how many
//! patterns reviewed) through a small latency model whose per-action
//! constants are calibrated to the absolute times the paper reports. The
//! paper's headline claims are about how verification effort *scales*
//! (1.3× for CLX vs 11.4× for FlashFill when the data grows 30×), and that
//! scaling is carried entirely by the trace counts, not by the constants.

use crate::clx_user::ClxTrace;
use crate::flashfill_user::FlashFillTrace;
use crate::regex_replace::RegexReplaceTrace;

/// Per-action latency constants (seconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UserModel {
    /// Reading and validating one transformed data instance.
    pub scan_row_secs: f64,
    /// Reading and understanding one pattern cluster label.
    pub scan_pattern_secs: f64,
    /// Reading one suggested `Replace` operation (with its preview).
    pub read_op_secs: f64,
    /// Typing one input/output example into a spreadsheet cell.
    pub type_example_secs: f64,
    /// Clicking/selecting a pattern or accepting a suggestion.
    pub click_secs: f64,
    /// Choosing an alternative plan during repair.
    pub repair_secs: f64,
    /// Hand-writing one regular expression.
    pub write_regex_secs: f64,
}

impl Default for UserModel {
    fn default() -> Self {
        UserModel {
            scan_row_secs: 1.2,
            scan_pattern_secs: 4.0,
            read_op_secs: 7.0,
            type_example_secs: 12.0,
            click_secs: 3.0,
            repair_secs: 9.0,
            write_regex_secs: 35.0,
        }
    }
}

/// Modelled times for one system on one task.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemTimes {
    /// Total task completion time (seconds).
    pub completion_secs: f64,
    /// The portion spent verifying (reading data/patterns/operations).
    pub verification_secs: f64,
    /// The portion spent specifying (typing, clicking, writing regexes).
    pub specification_secs: f64,
    /// Cumulative completion time at the end of each interaction (the
    /// timestamps plotted in Figure 11c).
    pub interaction_timestamps: Vec<f64>,
}

impl SystemTimes {
    fn from_interactions(per_interaction: Vec<(f64, f64)>) -> Self {
        let mut timestamps = Vec::with_capacity(per_interaction.len());
        let mut total = 0.0;
        let mut verification = 0.0;
        let mut specification = 0.0;
        for (verify, specify) in per_interaction {
            verification += verify;
            specification += specify;
            total += verify + specify;
            timestamps.push(total);
        }
        SystemTimes {
            completion_secs: total,
            verification_secs: verification,
            specification_secs: specification,
            interaction_timestamps: timestamps,
        }
    }
}

impl UserModel {
    /// Model the FlashFill trace: each interaction scans rows until the next
    /// mistake is found (verification) and types one example
    /// (specification); the final interaction is a full-column scan with no
    /// example.
    pub fn flashfill_times(&self, trace: &FlashFillTrace) -> SystemTimes {
        let mut per_interaction = Vec::new();
        for (i, scanned) in trace.rows_scanned_per_interaction.iter().enumerate() {
            let verify = *scanned as f64 * self.scan_row_secs;
            let is_example_interaction = i < trace.examples;
            let specify = if is_example_interaction {
                self.type_example_secs
            } else {
                0.0
            };
            per_interaction.push((verify, specify));
        }
        SystemTimes::from_interactions(per_interaction)
    }

    /// Model the CLX trace: one labelling interaction (read the pattern
    /// list, click the target), then one verify/repair interaction per
    /// suggested plan, then a final check of the post-transformation pattern
    /// list (which has collapsed to roughly one pattern plus any flagged
    /// cluster).
    pub fn clx_times(&self, trace: &ClxTrace) -> SystemTimes {
        let mut per_interaction = Vec::new();
        // Labelling: read every pattern cluster once, click one.
        per_interaction.push((
            trace.patterns_shown as f64 * self.scan_pattern_secs,
            self.click_secs,
        ));
        // Verify each suggested Replace operation; repairs add selection time.
        let repairs = trace.repairs;
        for i in 0..trace.plans_verified {
            let specify = if i < repairs { self.repair_secs } else { 0.0 };
            per_interaction.push((self.read_op_secs, specify));
        }
        // Final check of the post-transformation pattern list: the clusters
        // collapse to the target pattern plus at most a flagged remainder.
        let result_patterns = if trace.failing_rows > 0 { 2.0 } else { 1.0 };
        per_interaction.push((result_patterns * self.scan_pattern_secs, 0.0));
        SystemTimes::from_interactions(per_interaction)
    }

    /// Model the RegexReplace trace: each interaction scans rows to find the
    /// next ill-formatted record and writes two regexes; the final
    /// interaction is a full-column scan.
    pub fn regex_replace_times(&self, trace: &RegexReplaceTrace) -> SystemTimes {
        let mut per_interaction = Vec::new();
        for (i, scanned) in trace.rows_scanned_per_interaction.iter().enumerate() {
            let verify = *scanned as f64 * self.scan_row_secs;
            let specify = if i < trace.operations {
                2.0 * self.write_regex_secs
            } else {
                0.0
            };
            per_interaction.push((verify, specify));
        }
        SystemTimes::from_interactions(per_interaction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clx_user::run_clx_user;
    use crate::flashfill_user::run_flashfill_user;
    use crate::regex_replace::run_regex_replace_user;
    use clx_datagen::study_case;
    use clx_pattern::tokenize;

    fn expected_for(inputs: &[String]) -> Vec<String> {
        // Ground truth for the phone study: keep the 10 digits, re-render
        // dashed.
        inputs
            .iter()
            .map(|v| {
                let digits: String = v.chars().filter(|c| c.is_ascii_digit()).collect();
                format!("{}-{}-{}", &digits[0..3], &digits[3..6], &digits[6..10])
            })
            .collect()
    }

    #[test]
    fn times_are_split_into_verification_and_specification() {
        let case = study_case(30, 3, 1);
        let expected = expected_for(&case.data);
        let target = tokenize("734-422-8073");

        let ff = run_flashfill_user(&case.data, &expected, 20);
        let clx = run_clx_user(&case.data, &expected, &target);
        let (rr, _) = run_regex_replace_user(&case.data, &expected, &target, 20);

        let model = UserModel::default();
        for times in [
            model.flashfill_times(&ff),
            model.clx_times(&clx),
            model.regex_replace_times(&rr),
        ] {
            assert!(times.completion_secs > 0.0);
            assert!(
                (times.verification_secs + times.specification_secs - times.completion_secs).abs()
                    < 1e-9
            );
            assert!(!times.interaction_timestamps.is_empty());
            assert!(
                (times.interaction_timestamps.last().unwrap() - times.completion_secs).abs() < 1e-9
            );
            // Timestamps are non-decreasing.
            assert!(times
                .interaction_timestamps
                .windows(2)
                .all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn flashfill_verification_scales_with_rows_but_clx_does_not() {
        // The paper's headline: growing the data 30x grows FlashFill's
        // verification time an order of magnitude more than CLX's.
        let target = tokenize("734-422-8073");
        let model = UserModel::default();

        let small = study_case(10, 2, 5);
        let big = study_case(300, 6, 7);
        let small_expected = expected_for(&small.data);
        let big_expected = expected_for(&big.data);

        let ff_small = model
            .flashfill_times(&run_flashfill_user(&small.data, &small_expected, 30))
            .verification_secs;
        let ff_big = model
            .flashfill_times(&run_flashfill_user(&big.data, &big_expected, 30))
            .verification_secs;
        let clx_small = model
            .clx_times(&run_clx_user(&small.data, &small_expected, &target))
            .verification_secs;
        let clx_big = model
            .clx_times(&run_clx_user(&big.data, &big_expected, &target))
            .verification_secs;

        let ff_growth = ff_big / ff_small;
        let clx_growth = clx_big / clx_small;
        assert!(
            ff_growth > 3.0 * clx_growth,
            "FlashFill verification must grow much faster (ff {ff_growth:.1}x vs clx {clx_growth:.1}x)"
        );
    }

    #[test]
    fn clx_interaction_timestamps_are_evenly_spaced() {
        // Figure 11c: CLX interaction intervals stay roughly stable, while
        // FlashFill's grow towards the end.
        let case = study_case(300, 6, 11);
        let expected = expected_for(&case.data);
        let target = tokenize("734-422-8073");
        let model = UserModel::default();

        let clx = model.clx_times(&run_clx_user(&case.data, &expected, &target));
        let ff = model.flashfill_times(&run_flashfill_user(&case.data, &expected, 30));

        let intervals = |ts: &[f64]| -> Vec<f64> {
            let mut prev = 0.0;
            ts.iter()
                .map(|t| {
                    let d = t - prev;
                    prev = *t;
                    d
                })
                .collect()
        };
        let clx_intervals = intervals(&clx.interaction_timestamps);
        let ff_intervals = intervals(&ff.interaction_timestamps);
        let spread = |v: &[f64]| {
            let max = v.iter().cloned().fold(f64::MIN, f64::max);
            let min = v.iter().cloned().fold(f64::MAX, f64::min);
            max / min.max(1e-9)
        };
        assert!(
            spread(&ff_intervals) > spread(&clx_intervals),
            "FlashFill interaction intervals should be far more uneven"
        );
    }

    #[test]
    fn custom_model_constants_scale_results() {
        let case = study_case(20, 2, 3);
        let expected = expected_for(&case.data);
        let trace = run_flashfill_user(&case.data, &expected, 20);
        let slow = UserModel {
            scan_row_secs: 2.4,
            ..UserModel::default()
        };
        let fast = UserModel::default();
        assert!(
            slow.flashfill_times(&trace).verification_secs
                > fast.flashfill_times(&trace).verification_secs
        );
    }
}
