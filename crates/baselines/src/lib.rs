//! # clx-baselines
//!
//! The evaluation machinery of *CLX: Towards verifiable PBE data
//! transformation*: the comparison baselines and the simulated users that
//! stand in for the paper's nine study participants.
//!
//! * [`run_clx_user`] — the "lazy" CLX user of §7.4: label the target
//!   pattern, verify each suggested plan, repair the wrong ones.
//! * [`run_flashfill_user`] — the FlashFill user: give an example for the
//!   first wrong record, re-check the column, repeat.
//! * [`run_regex_replace_user`] — the Trifacta-style RegexReplace user who
//!   hand-writes one `Replace` operation per ill-formatted pattern.
//! * [`UserModel`] — the per-action latency model that converts interaction
//!   traces into completion/verification times (Figures 11, 12, 14).
//! * [`comprehension_study`] — the §7.3 explainability study as a
//!   transferability proxy (Figure 13).
//! * [`run_simulation`] / [`table7`] / [`expressivity`] / [`speedups`] /
//!   [`step_cdf`] / [`appendix_e`] — the 47-task effort simulation and its
//!   aggregations (Table 7, Figures 15–16, Appendix E).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod clx_user;
mod comprehension;
mod flashfill_user;
mod regex_replace;
mod simulation;
mod user_model;

pub use clx_user::{run_clx_user, ClxTrace};
pub use comprehension::{comprehension_study, quiz_questions, ComprehensionResult, QuizQuestion};
pub use flashfill_user::{run_flashfill_user, FlashFillTrace};
pub use regex_replace::{run_regex_replace_user, RegexReplaceTrace};
pub use simulation::{
    appendix_e, expressivity, run_simulation, run_task, speedups, step_cdf, table7, AppendixEStats,
    EffortComparison, Expressivity, StepCdfPoint, Table7, TaskResult,
};
pub use user_model::{SystemTimes, UserModel};
