//! The simulated FlashFill user of §7.4: provide the first positive example
//! on the first record in a non-standard format, then iteratively provide a
//! positive example for the first record the synthesized program still gets
//! wrong, until the whole column is correct (or the interaction budget runs
//! out).

use clx_flashfill::{Example, FlashFill};

/// The trace of one simulated FlashFill run on one task.
#[derive(Debug, Clone)]
pub struct FlashFillTrace {
    /// Number of examples the user typed (one interaction each).
    pub examples: usize,
    /// Rows the final program still gets wrong.
    pub failing_rows: usize,
    /// Number of rows in the task.
    pub rows: usize,
    /// Whether the final program reproduces the ground truth on every row.
    pub perfect: bool,
    /// For each interaction, how many rows the user had to scan (starting
    /// from the top of the column) before finding the mistake that prompted
    /// the next example — the per-interaction verification workload that
    /// grows as the column gets cleaner (Figure 11c of the paper).
    pub rows_scanned_per_interaction: Vec<usize>,
}

impl FlashFillTrace {
    /// The paper's Step metric for FlashFill: examples provided plus one
    /// punishment step per row the final program still gets wrong.
    pub fn steps(&self) -> usize {
        self.examples + self.failing_rows
    }

    /// Interactions for Figure 11b: the number of examples provided.
    pub fn interactions(&self) -> usize {
        self.examples
    }
}

/// Run the simulated FlashFill user.
///
/// `max_examples` bounds the loop (a real user gives up eventually; the
/// paper's tasks never need more than a handful of examples per format).
pub fn run_flashfill_user(
    inputs: &[String],
    expected: &[String],
    max_examples: usize,
) -> FlashFillTrace {
    assert_eq!(inputs.len(), expected.len());
    let engine = FlashFill::new();
    let rows = inputs.len();
    let mut examples: Vec<Example> = Vec::new();
    let mut rows_scanned_per_interaction = Vec::new();

    // First example: the first record whose value is not already correct.
    let first_wrong = inputs
        .iter()
        .zip(expected)
        .position(|(i, e)| i != e)
        .unwrap_or(0);
    rows_scanned_per_interaction.push(first_wrong + 1);
    examples.push(Example::new(
        inputs[first_wrong].clone(),
        expected[first_wrong].clone(),
    ));

    loop {
        let outputs = engine.learn_and_apply(&examples, inputs);
        let first_failure = outputs
            .iter()
            .zip(expected)
            .position(|(got, want)| got != want);
        match first_failure {
            None => {
                // Final pass: the user scans the whole column and finds
                // nothing left to fix.
                rows_scanned_per_interaction.push(rows);
                return FlashFillTrace {
                    examples: examples.len(),
                    failing_rows: 0,
                    rows,
                    perfect: true,
                    rows_scanned_per_interaction,
                };
            }
            Some(row) => {
                if examples.len() >= max_examples {
                    let failing = outputs
                        .iter()
                        .zip(expected)
                        .filter(|(got, want)| got != want)
                        .count();
                    return FlashFillTrace {
                        examples: examples.len(),
                        failing_rows: failing,
                        rows,
                        perfect: false,
                        rows_scanned_per_interaction,
                    };
                }
                // The user scanned down to this row to discover the mistake,
                // then typed a corrective example.
                rows_scanned_per_interaction.push(row + 1);
                examples.push(Example::new(inputs[row].clone(), expected[row].clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_column_needs_one_example() {
        let inputs: Vec<String> = vec![
            "(734) 645-8397".into(),
            "(231) 555-0199".into(),
            "(941) 222-3333".into(),
        ];
        let expected: Vec<String> = vec![
            "734-645-8397".into(),
            "231-555-0199".into(),
            "941-222-3333".into(),
        ];
        let trace = run_flashfill_user(&inputs, &expected, 10);
        assert!(trace.perfect);
        assert_eq!(trace.examples, 1);
        assert_eq!(trace.steps(), 1);
        assert_eq!(trace.interactions(), 1);
    }

    #[test]
    fn one_example_per_format_is_typical() {
        let inputs: Vec<String> = vec![
            "(734) 645-8397".into(),
            "734.236.3466".into(),
            "(231) 555-0199".into(),
            "941.222.3333".into(),
        ];
        let expected: Vec<String> = vec![
            "734-645-8397".into(),
            "734-236-3466".into(),
            "231-555-0199".into(),
            "941-222-3333".into(),
        ];
        let trace = run_flashfill_user(&inputs, &expected, 10);
        assert!(trace.perfect);
        assert!(trace.examples >= 2 && trace.examples <= 4, "{trace:?}");
    }

    #[test]
    fn verification_scans_grow_as_errors_get_rarer() {
        // 20 rows: the dominant format is fixed by the first example, the
        // rare format near the bottom forces a long scan.
        let mut inputs: Vec<String> = Vec::new();
        let mut expected: Vec<String> = Vec::new();
        for i in 0..18 {
            inputs.push(format!("(70{}) 645-839{}", i % 10, i % 10));
            expected.push(format!("70{}-645-839{}", i % 10, i % 10));
        }
        inputs.push("734.236.3466".into());
        expected.push("734-236-3466".into());
        inputs.push("941.222.3333".into());
        expected.push("941-222-3333".into());
        let trace = run_flashfill_user(&inputs, &expected, 10);
        assert!(trace.perfect);
        let scans = &trace.rows_scanned_per_interaction;
        assert!(scans.len() >= 3);
        // The last scans cover (nearly) the whole column.
        assert!(*scans.last().unwrap() == inputs.len());
        assert!(scans[scans.len() - 2] > scans[0]);
    }

    #[test]
    fn budget_exhaustion_reports_failures() {
        let inputs: Vec<String> = vec!["abc".into(), "123-xyz".into()];
        let expected: Vec<String> = vec!["impossible1".into(), "impossible2".into()];
        let trace = run_flashfill_user(&inputs, &expected, 1);
        assert!(!trace.perfect);
        assert_eq!(trace.examples, 1);
        assert!(trace.failing_rows >= 1);
        assert!(trace.steps() >= 2);
    }

    #[test]
    fn already_clean_column() {
        let inputs: Vec<String> = vec!["734-645-8397".into(), "231-555-0199".into()];
        let expected = inputs.clone();
        let trace = run_flashfill_user(&inputs, &expected, 10);
        assert!(trace.perfect);
        assert_eq!(trace.examples, 1);
    }
}
