//! The RegexReplace baseline of the paper's evaluation: the Trifacta
//! Wrangler feature that lets the user hand-author `Replace` operations with
//! natural-language-like regexes.
//!
//! The simulated user follows §7.4: write a `Replace` with the matching
//! regex and the replacement for the first ill-formatted record, re-check
//! the column, and keep adding `Replace` operations until everything is in
//! the desired format. Each authored operation costs two regexes' worth of
//! effort (2 Steps).

use clx_cluster::GeneralizationStrategy;
use clx_pattern::{tokenize, Pattern};
use clx_synth::{align, rank_plans};
use clx_unifi::{eval_expr, explain_branch, Branch, ReplaceOp};

/// The trace of one simulated RegexReplace run.
#[derive(Debug, Clone)]
pub struct RegexReplaceTrace {
    /// Number of `Replace` operations the user authored.
    pub operations: usize,
    /// Rows whose final value still differs from the ground truth.
    pub failing_rows: usize,
    /// Number of rows in the task.
    pub rows: usize,
    /// Whether the final operation list reproduces the ground truth.
    pub perfect: bool,
    /// Rows scanned (from the top) to find the mistake that prompted each
    /// new operation.
    pub rows_scanned_per_interaction: Vec<usize>,
}

impl RegexReplaceTrace {
    /// The paper's Step metric: 2 steps per authored operation (two regexes
    /// to type) plus one punishment step per remaining failure.
    pub fn steps(&self) -> usize {
        2 * self.operations + self.failing_rows
    }

    /// Interactions: one per authored operation.
    pub fn interactions(&self) -> usize {
        self.operations
    }
}

/// Run the simulated RegexReplace user. Returns the trace and the authored
/// operations.
pub fn run_regex_replace_user(
    inputs: &[String],
    expected: &[String],
    target: &Pattern,
    max_operations: usize,
) -> (RegexReplaceTrace, Vec<ReplaceOp>) {
    assert_eq!(inputs.len(), expected.len());
    let rows = inputs.len();
    let mut ops: Vec<ReplaceOp> = Vec::new();
    let mut rows_scanned_per_interaction = Vec::new();

    loop {
        let outputs: Vec<String> = inputs.iter().map(|v| apply_ops(&ops, v)).collect();
        let first_failure = outputs
            .iter()
            .zip(expected)
            .position(|(got, want)| got != want);
        match first_failure {
            None => {
                rows_scanned_per_interaction.push(rows);
                return (
                    RegexReplaceTrace {
                        operations: ops.len(),
                        failing_rows: 0,
                        rows,
                        perfect: true,
                        rows_scanned_per_interaction,
                    },
                    ops,
                );
            }
            Some(row) => {
                if ops.len() >= max_operations {
                    let failing = outputs
                        .iter()
                        .zip(expected)
                        .filter(|(got, want)| got != want)
                        .count();
                    return (
                        RegexReplaceTrace {
                            operations: ops.len(),
                            failing_rows: failing,
                            rows,
                            perfect: false,
                            rows_scanned_per_interaction,
                        },
                        ops,
                    );
                }
                rows_scanned_per_interaction.push(row + 1);
                let op = author_replace_op(inputs, expected, row, target);
                ops.push(op);
            }
        }
    }
}

/// Apply the authored operations to one value: the first operation whose
/// regex matches rewrites the value.
fn apply_ops(ops: &[ReplaceOp], value: &str) -> String {
    for op in ops {
        if let Some(out) = op.apply(value) {
            return out;
        }
    }
    value.to_string()
}

/// Author a `Replace` operation that fixes row `row` — and, when possible,
/// every other row sharing its leaf pattern (a skilled regex author writes
/// the general rule, not a one-off).
fn author_replace_op(
    inputs: &[String],
    expected: &[String],
    row: usize,
    _target: &Pattern,
) -> ReplaceOp {
    let leaf_pattern = tokenize(&inputs[row]);
    let target_pattern = tokenize(&expected[row]);
    // A skilled regex author writes the general rule (`+` quantifiers over
    // the leaf's exact counts) when it fixes every row it matches, and falls
    // back to more specific patterns otherwise.
    let general_pattern = GeneralizationStrategy::QuantifierToPlus.parent_of(&leaf_pattern);
    let candidate_patterns = if general_pattern == leaf_pattern {
        vec![leaf_pattern.clone()]
    } else {
        vec![general_pattern, leaf_pattern.clone()]
    };

    for source_pattern in &candidate_patterns {
        let cluster: Vec<usize> = inputs
            .iter()
            .enumerate()
            .filter(|(i, v)| source_pattern.matches(v) && inputs[*i] != expected[*i])
            .map(|(i, _)| i)
            .collect();
        if cluster.is_empty() {
            continue;
        }
        // Find an atomic transformation plan consistent with the whole cluster.
        let dag = align(source_pattern, &target_pattern);
        let plans = rank_plans(dag.enumerate_plans(2_000), source_pattern);
        for (plan, _) in &plans {
            let consistent = cluster.iter().all(|&i| {
                eval_expr(plan, source_pattern, &inputs[i])
                    .map(|out| out == expected[i])
                    .unwrap_or(false)
            });
            if consistent {
                let branch = Branch::new(source_pattern.clone(), plan.clone());
                if let Ok(op) = explain_branch(&branch) {
                    return op;
                }
            }
        }
    }
    // Fall back to a plan correct for this row only.
    let dag = align(&leaf_pattern, &target_pattern);
    let plans = rank_plans(dag.enumerate_plans(2_000), &leaf_pattern);
    for (plan, _) in &plans {
        if eval_expr(plan, &leaf_pattern, &inputs[row])
            .map(|out| out == expected[row])
            .unwrap_or(false)
        {
            let branch = Branch::new(leaf_pattern.clone(), plan.clone());
            if let Ok(op) = explain_branch(&branch) {
                return op;
            }
        }
    }
    // A regex author can also capture *within* a token run (e.g. split a
    // bare 10-digit number into three groups), which the token-level
    // alignment cannot express.
    if let Some(op) = author_splitting_op(&leaf_pattern, &target_pattern) {
        let check = |i: usize| op.apply(&inputs[i]).as_deref() == Some(expected[i].as_str());
        if check(row) {
            return op;
        }
    }
    // Last resort: replace this exact value with its exact expected output.
    let branch = Branch::new(
        tokenize(&inputs[row]),
        clx_unifi::Expr::concat(vec![clx_unifi::StringExpr::const_str(
            expected[row].clone(),
        )]),
    );
    explain_branch(&branch).expect("literal replace always explains")
}

/// Author a `Replace` that captures sub-runs of the source's base tokens in
/// left-to-right order, as a human regex writer would for
/// `7342363466 -> 734-236-3466`. Returns `None` when the target cannot be
/// built by an order-preserving split of the source.
fn author_splitting_op(source: &Pattern, target: &Pattern) -> Option<ReplaceOp> {
    use clx_pattern::wrangler::class_wrangler_name;
    use clx_pattern::Quantifier;

    let src: Vec<_> = source.tokens().to_vec();
    let mut si = 0usize;
    let mut remaining = src.first().map(token_width).unwrap_or(0);
    let mut regex = String::from("/^");
    let mut replacement = String::new();
    let mut group = 0usize;

    let emit_source_literal = |tok: &clx_pattern::Token, regex: &mut String| {
        for c in tok.literal_value().unwrap_or_default().chars() {
            regex.push('\\');
            regex.push(c);
        }
    };

    for t in target.tokens() {
        match t.literal_value() {
            Some(lit) => replacement.push_str(&lit.replace('$', "$$")),
            None => {
                let Quantifier::Exact(n) = t.quantifier else {
                    return None;
                };
                // Skip source literals standing between us and the next base run.
                while si < src.len() && src[si].is_literal() {
                    emit_source_literal(&src[si], &mut regex);
                    si += 1;
                    remaining = src.get(si).map(token_width).unwrap_or(0);
                }
                if si >= src.len() || src[si].class != t.class || remaining < n {
                    return None;
                }
                let class = class_wrangler_name(&t.class)?;
                regex.push_str(&format!("({class}{{{n}}})"));
                group += 1;
                replacement.push_str(&format!("${group}"));
                remaining -= n;
                if remaining == 0 {
                    si += 1;
                    remaining = src.get(si).map(token_width).unwrap_or(0);
                }
            }
        }
    }
    // Whatever source content is left is matched but dropped.
    while si < src.len() {
        let tok = &src[si];
        if tok.is_literal() {
            emit_source_literal(tok, &mut regex);
        } else if remaining > 0 {
            let class = class_wrangler_name(&tok.class)?;
            regex.push_str(&format!("{class}{{{remaining}}}"));
        }
        si += 1;
        remaining = src.get(si).map(token_width).unwrap_or(0);
    }
    regex.push_str("$/");
    ReplaceOp::from_parts(&regex, &replacement, source.clone()).ok()
}

/// Width in characters of one token (exact quantifier or literal length).
fn token_width(tok: &clx_pattern::Token) -> usize {
    match tok.literal_value() {
        Some(s) => s.chars().count(),
        None => tok.quantifier.min_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitting_author_handles_bare_digit_runs() {
        let source = tokenize("7342363466");
        let target = tokenize("734-236-3466");
        let op = author_splitting_op(&source, &target).expect("splitting op");
        assert_eq!(op.regex_display, "/^({digit}{3})({digit}{3})({digit}{4})$/");
        assert_eq!(op.replacement, "$1-$2-$3");
        assert_eq!(op.apply("2315550199").unwrap(), "231-555-0199");
    }

    #[test]
    fn bare_phone_numbers_get_one_splitting_op() {
        let inputs: Vec<String> = vec![
            "7346458397".into(),
            "2315550199".into(),
            "734-422-8073".into(),
        ];
        let expected: Vec<String> = vec![
            "734-645-8397".into(),
            "231-555-0199".into(),
            "734-422-8073".into(),
        ];
        let target = tokenize("734-422-8073");
        let (trace, ops) = run_regex_replace_user(&inputs, &expected, &target, 10);
        assert!(trace.perfect);
        assert_eq!(ops.len(), 1, "{ops:?}");
    }

    #[test]
    fn one_op_per_format() {
        let inputs: Vec<String> = vec![
            "(734) 645-8397".into(),
            "(231) 555-0199".into(),
            "734.236.3466".into(),
            "734-422-8073".into(),
        ];
        let expected: Vec<String> = vec![
            "734-645-8397".into(),
            "231-555-0199".into(),
            "734-236-3466".into(),
            "734-422-8073".into(),
        ];
        let target = tokenize("734-422-8073");
        let (trace, ops) = run_regex_replace_user(&inputs, &expected, &target, 10);
        assert!(trace.perfect);
        assert_eq!(trace.operations, 2, "{ops:?}");
        assert_eq!(trace.steps(), 4);
        assert_eq!(trace.interactions(), 2);
    }

    #[test]
    fn authored_ops_use_wrangler_regex_syntax() {
        let inputs: Vec<String> = vec!["(734) 645-8397".into()];
        let expected: Vec<String> = vec!["734-645-8397".into()];
        let target = tokenize("734-422-8073");
        let (_, ops) = run_regex_replace_user(&inputs, &expected, &target, 10);
        assert_eq!(ops.len(), 1);
        assert!(ops[0].regex_display.starts_with("/^"));
        assert!(ops[0].regex_display.contains("{digit}"));
    }

    #[test]
    fn impossible_rows_fall_back_to_literal_replaces() {
        let inputs: Vec<String> = vec!["N/A".into(), "??".into()];
        let expected: Vec<String> = vec!["000-000-0000".into(), "111-111-1111".into()];
        let target = tokenize("734-422-8073");
        let (trace, ops) = run_regex_replace_user(&inputs, &expected, &target, 10);
        // The user can always write literal replaces, so the column ends
        // correct — at the cost of one operation per odd row.
        assert!(trace.perfect);
        assert_eq!(ops.len(), 2);
        assert_eq!(trace.steps(), 4);
    }

    #[test]
    fn operation_budget_is_respected() {
        let inputs: Vec<String> = (0..6).map(|i| format!("row{i}")).collect();
        let expected: Vec<String> = (0..6).map(|i| format!("out{i}")).collect();
        let target = tokenize("out0");
        let (trace, ops) = run_regex_replace_user(&inputs, &expected, &target, 3);
        assert_eq!(ops.len(), 3);
        assert!(!trace.perfect);
        assert!(trace.failing_rows > 0);
    }

    #[test]
    fn already_clean_column_needs_no_ops() {
        let inputs: Vec<String> = vec!["734-422-8073".into()];
        let expected = inputs.clone();
        let target = tokenize("734-422-8073");
        let (trace, ops) = run_regex_replace_user(&inputs, &expected, &target, 10);
        assert!(trace.perfect);
        assert!(ops.is_empty());
        assert_eq!(trace.steps(), 0);
    }
}
