//! # clx
//!
//! A from-scratch, open-source implementation of **CLX** — the
//! *Cluster–Label–Transform* paradigm for verifiable programming-by-example
//! data transformation (Jin et al., *CLX: Towards verifiable PBE data
//! transformation*).
//!
//! This facade crate re-exports the whole workspace so a downstream user can
//! depend on `clx` alone:
//!
//! * [`ClxSession`] — the end-to-end engine, with the protocol in its
//!   types: a [`ClxSession<Clustered>`](ClxSession) clusters a messy column
//!   into pattern clusters; labelling *consumes* it and returns a
//!   [`ClxSession<Labelled>`](ClxSession), the only type carrying the
//!   transform-phase methods (synthesize, explain as `Replace` operations,
//!   repair, apply). Phase misuse is a compile error, not a runtime check
//!   ([`core`]). Dynamic callers hold an [`AnySession`].
//! * [`engine`] — the compiled batch-execution subsystem:
//!   [`ClxSession::compile`](clx_core::ClxSession::compile) turns the
//!   synthesized program into a thread-safe [`CompiledProgram`] for
//!   parallel chunked execution, streaming over columns larger than
//!   memory, and LRU caching ([`ProgramCache`]). Reports are columnar
//!   ([`TransformReport`]): one outcome per *distinct* value plus the
//!   column's shared row map — O(distinct), never per-duplicate clones.
//!   After a repair, [`ClxSession::reverify`](clx_core::ClxSession::reverify)
//!   diffs old vs new program ([`ProgramDelta`]) and patches the existing
//!   report in place, re-deciding only the *affected* distincts;
//!   [`ColumnStream::swap_program`](clx_engine::ColumnStream::swap_program)
//!   does the same for a live stream;
//! * [`column`](mod@column) — the shared column data plane: interned, deduplicated
//!   rows with cached token streams ([`Column`]) that profiler, synthesizer,
//!   session and engine all read instead of re-tokenizing;
//! * [`pattern`] — the token/pattern language and tokenizer;
//! * [`regex`] — the Pike-VM regular-expression engine that executes the
//!   explained `Replace` operations;
//! * [`cluster`] — pattern profiling and the cluster hierarchy;
//! * [`unifi`] — the UniFi DSL, its evaluator and the program explainer;
//! * [`analyze`] — static program diagnostics:
//!   [`ClxSession::analyze`](clx_core::ClxSession::analyze) proves
//!   language-level properties of the synthesized program (dead/shadowed
//!   branches, unsafe extracts, output conformance) before any row runs,
//!   returning a [`ProgramDiagnostics`] report with stable `CLX00x` codes;
//!   [`ClxSession::compile_strict`](clx_core::ClxSession::compile_strict)
//!   turns `Error` findings into compile rejections;
//! * [`synth`] — source validation, token alignment, MDL ranking and the
//!   Algorithm-2 synthesizer;
//! * [`flashfill`] — the FlashFill-style PBE baseline of the evaluation;
//! * [`baselines`] — simulated users, the Step metric and the user studies;
//! * [`datagen`] — seeded workload generators and the 47-task benchmark;
//! * [`telemetry`] — the zero-overhead-when-off metrics plane:
//!   [`MetricSink`] counters/gauges/latency histograms, [`InMemorySink`],
//!   [`Span`] guards and the [`TelemetrySnapshot`] JSON/Prometheus export.
//!   Attach with [`ClxSession::with_telemetry`](clx_core::ClxSession::with_telemetry)
//!   or [`ColumnStream::with_telemetry`](clx_engine::ColumnStream::with_telemetry).
//!
//! # Quickstart
//!
//! ```
//! use clx::ClxSession;
//!
//! let column = vec![
//!     "(734) 645-8397".to_string(),
//!     "(734)586-7252".to_string(),
//!     "734-422-8073".to_string(),
//!     "734.236.3466".to_string(),
//! ];
//!
//! // 1. Cluster: review the pattern list instead of the raw rows.
//! let session = ClxSession::new(column);
//! assert_eq!(session.patterns().len(), 4);
//!
//! // 2. Label: pick the desired pattern (here, by example). Labelling
//! //    consumes the clustered session and returns the labelled one — the
//! //    only type with `apply`, `explanation`, `repair`, `compile`, …
//! let session = session.label_by_example("734-422-8073").unwrap();
//!
//! // 3. Transform: the program is explained as Replace operations and
//! //    applied to the whole column (one decision per distinct value).
//! println!("{}", session.suggested_operations("column1").unwrap());
//! let report = session.apply().unwrap();
//! assert!(report.is_perfect());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use clx_analyze as analyze;
pub use clx_baselines as baselines;
pub use clx_cluster as cluster;
pub use clx_column as column;
pub use clx_core as core;
pub use clx_datagen as datagen;
pub use clx_engine as engine;
pub use clx_flashfill as flashfill;
pub use clx_pattern as pattern;
pub use clx_regex as regex;
pub use clx_synth as synth;
pub use clx_telemetry as telemetry;
pub use clx_unifi as unifi;

pub use clx_analyze::{
    analyze_program, BranchFacts, Diagnostic, DiagnosticCode, Evidence, ProgramDiagnostics,
    Severity,
};
pub use clx_column::{
    BudgetPolicy, Column, ColumnBuilder, ColumnChunk, ColumnInterner, InternerStats, StreamBudget,
};
pub use clx_core::{
    AnySession, Clustered, ClxError, ClxOptions, ClxSession, LabelError, Labelled, RowOutcome,
    TransformReport,
};
pub use clx_engine::{
    BatchReport, ColumnStream, CompiledProgram, DispatchStats, ExecOptions, PatchStats,
    ProgramCache, ProgramCacheStats, ProgramDelta, StreamSession, StreamSummary, SwapSummary,
};
pub use clx_pattern::{parse_pattern, tokenize, Pattern, Token, TokenClass};
pub use clx_synth::{validate_report, ValidationReport};
pub use clx_telemetry::{InMemorySink, MetricSink, NoopSink, Span, TelemetrySnapshot};
pub use clx_unifi::{Explanation, Program, ReplaceOp};
