//! Sequential/parallel equivalence: the compiled `clx-engine` path must
//! produce *exactly* the rows of `ClxSession::apply` — same transformed
//! values, and identical `Flagged` rows (§6.1 "leave unchanged and flag") —
//! on the phone-number workload of `crates/datagen`.

use clx::datagen::{DataGenerator, PhoneFormat};
use clx::engine::ExecOptions;
use clx::{tokenize, ClxSession, Labelled, ProgramCache, TransformReport};

/// The §7.2 study formats plus the paper's noise formats (`N/A`, `+1 ...`),
/// so the column exercises conforming, transformed and flagged rows.
fn noisy_phone_column(rows: usize, seed: u64) -> Vec<String> {
    let mut generator = DataGenerator::new(seed);
    let mut formats = PhoneFormat::STUDY_FORMATS.to_vec();
    formats.push(PhoneFormat::CountryCode);
    formats.push(PhoneFormat::Missing);
    let weights = [40usize, 25, 12, 8, 4, 3, 4, 4];
    generator.phone_column(rows, &formats, &weights)
}

fn labelled_session(data: Vec<String>) -> ClxSession<Labelled> {
    ClxSession::new(data)
        .label(tokenize("734-422-8073"))
        .unwrap()
}

#[test]
fn parallel_report_is_identical_to_sequential_apply() {
    let data = noisy_phone_column(3_000, 20_19);
    let session = labelled_session(data);

    let sequential = session.apply().unwrap();
    let parallel = session.apply_parallel().unwrap();

    // Row-for-row identity: same variants, same values, same order.
    assert_eq!(sequential, parallel);
}

#[test]
fn flagged_rows_match_exactly() {
    let data = noisy_phone_column(1_500, 7);
    let session = labelled_session(data.clone());

    let sequential = session.apply().unwrap();
    let compiled = session.compile().unwrap();
    let parallel = TransformReport::from_batch(compiled.execute(&data));

    // The workload really produces flagged rows: "N/A" never reaches the
    // target pattern, and bare 10-digit rows (`<D>10`) cannot be split at
    // token granularity by UniFi's `Extract`. Both paths must flag the same
    // rows with unchanged values.
    let flagged: Vec<&str> = sequential.flagged_values();
    assert!(flagged.contains(&"N/A"), "workload must exercise flagging");
    assert!(flagged
        .iter()
        .all(|v| *v == "N/A" || v.chars().all(|c| c.is_ascii_digit())));
    assert_eq!(flagged, parallel.flagged_values());
    assert_eq!(sequential.flagged_count(), parallel.flagged_count());
    for (s, p) in sequential.iter_rows().zip(parallel.iter_rows()) {
        assert_eq!(s.is_flagged(), p.is_flagged());
        assert_eq!(s.value(), p.value());
    }
}

#[test]
fn chunking_and_thread_count_do_not_change_the_report() {
    let data = noisy_phone_column(1_000, 99);
    let session = labelled_session(data.clone());
    let compiled = session.compile().unwrap();

    let baseline = session.apply().unwrap();
    for (threads, chunk_size) in [(1, 64), (2, 100), (4, 333), (8, 7), (3, 100_000)] {
        let report = TransformReport::from_batch(compiled.execute_with(
            &data,
            ExecOptions {
                threads,
                chunk_size,
            },
        ));
        assert_eq!(
            baseline, report,
            "threads={threads} chunk_size={chunk_size} diverged"
        );
    }
}

#[test]
fn streaming_path_matches_sequential_apply() {
    let data = noisy_phone_column(2_048, 3);
    let session = labelled_session(data.clone());
    let compiled = session.compile().unwrap();
    let sequential = session.apply().unwrap();

    let mut stream = compiled.stream();
    let mut streamed_values = Vec::new();
    for chunk in data.chunks(500) {
        let report = stream.push_chunk(chunk);
        streamed_values.extend(report.iter_values().map(str::to_string));
    }
    let summary = stream.finish();

    assert_eq!(streamed_values, sequential.values());
    assert_eq!(summary.rows(), data.len());
    assert_eq!(summary.stats.flagged, sequential.flagged_count());
    assert_eq!(summary.stats.transformed, sequential.transformed_count());
    assert_eq!(summary.stats.conforming, sequential.conforming_count());
}

#[test]
fn column_execution_is_identical_to_row_execution() {
    // The column path dispatches on cached leaf signatures and decides each
    // distinct value once; the report must still be row-for-row identical
    // to the per-row engine path and to sequential apply — flagged rows
    // included.
    let data = noisy_phone_column(2_500, 11);
    let session = labelled_session(data.clone());
    let compiled = session.compile().unwrap();

    let sequential = session.apply().unwrap();
    let per_row = TransformReport::from_batch(compiled.execute(&data));
    let per_column = TransformReport::from_batch(compiled.execute_column(session.data()));

    assert_eq!(sequential, per_row);
    assert_eq!(sequential, per_column);
    assert_eq!(per_row.flagged_values(), per_column.flagged_values());
}

#[test]
fn program_cache_serves_repeat_sessions() {
    let cache = ProgramCache::new(8);
    let session = labelled_session(noisy_phone_column(200, 1));
    let program = session.program();
    let target = session.target().clone();

    let first = cache.get_or_compile(&program, &target).unwrap();
    let second = cache.get_or_compile(&program, &target).unwrap();
    assert_eq!(cache.hits(), 1);
    assert_eq!(cache.misses(), 1);

    // Both handles are the same compilation and still agree with apply().
    let data = session.data().to_vec();
    let a = TransformReport::from_batch(first.execute(&data));
    let b = TransformReport::from_batch(second.execute(&data));
    let sequential = session.apply().unwrap();
    assert_eq!(a, sequential);
    assert_eq!(b, sequential);
}
