//! Parallel column construction must be invisible: `ColumnBuilder` with 1
//! vs N shards produces byte-identical `Column`s (distinct order, row map,
//! leaf signatures, leaf-id assignment) on the datagen duplicate-heavy
//! workload — and both match the sequential `Column::from_rows`.

use clx::{Column, ColumnBuilder};
use clx_datagen::duplicate_heavy_case;

fn assert_byte_identical(a: &Column, b: &Column) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.distinct_count(), b.distinct_count());
    assert_eq!(a.leaf_count(), b.leaf_count());
    assert_eq!(a.interned_bytes(), b.interned_bytes());
    assert_eq!(a.row_map().as_ref(), b.row_map().as_ref());
    for (va, vb) in a.distinct_values().zip(b.distinct_values()) {
        assert_eq!(va.text(), vb.text(), "distinct order must match");
        assert_eq!(va.leaf(), vb.leaf());
        assert_eq!(va.leaf_id(), vb.leaf_id());
        assert_eq!(
            va.tokenized().slices.len(),
            vb.tokenized().slices.len(),
            "cached token streams must match on {}",
            va.text()
        );
        assert_eq!(va.rows().collect::<Vec<_>>(), vb.rows().collect::<Vec<_>>());
    }
}

#[test]
fn sharded_construction_is_byte_identical_on_duplicate_heavy_data() {
    // ~500 distinct values over 50k rows: every shard sees almost every
    // distinct value, so the merge's first-occurrence ordering is exercised
    // hard.
    let case = duplicate_heavy_case(50_000, 500, 7);
    let sequential = Column::from_rows(case.data.clone());
    assert_eq!(sequential.distinct_count(), 500);
    assert!(sequential.leaf_count() < sequential.distinct_count());

    for shards in [1, 2, 3, 4, 8] {
        let sharded = ColumnBuilder::new().shards(shards).build(case.data.clone());
        assert_byte_identical(&sequential, &sharded);
    }
}

#[test]
fn auto_sharding_matches_sequential() {
    let case = duplicate_heavy_case(20_000, 300, 3);
    let auto = ColumnBuilder::new().build(case.data.clone());
    assert_byte_identical(&Column::from_rows(case.data), &auto);
}

#[test]
fn shard_boundaries_do_not_split_first_occurrence_order() {
    // A value whose first occurrence is the last row of a shard and which
    // reappears as the first row of the next shard: global order must be
    // decided by the earlier row.
    let rows: Vec<String> = vec![
        "z-9".into(), // shard 1 (of 2, block size 2)
        "a-1".into(),
        "a-1".into(), // shard 2 starts here
        "b-2".into(),
    ];
    let sharded = ColumnBuilder::new().shards(2).build(rows.clone());
    let sequential = Column::from_rows(rows);
    assert_byte_identical(&sequential, &sharded);
    let order: Vec<&str> = sharded.distinct_values().map(|v| v.text()).collect();
    assert_eq!(order, vec!["z-9", "a-1", "b-2"]);
}
