//! Integration checks that the experiment harness reproduces the *shape* of
//! the paper's headline results (who wins, by roughly what factor). The
//! absolute numbers live in EXPERIMENTS.md; these tests keep the claims true
//! as the code evolves.

use clx::baselines::{run_clx_user, run_flashfill_user, UserModel};
use clx::datagen::study_case;
use clx::tokenize;

fn phone_ground_truth(inputs: &[String]) -> Vec<String> {
    inputs
        .iter()
        .map(|v| {
            let digits: String = v.chars().filter(|c| c.is_ascii_digit()).collect();
            format!("{}-{}-{}", &digits[0..3], &digits[3..6], &digits[6..10])
        })
        .collect()
}

#[test]
fn headline_verification_scaling() {
    // Paper §7.2: data grows 30x (10(2) -> 300(6)); CLX verification grows
    // ~1.3x while FlashFill grows ~11.4x. Require the qualitative gap: CLX
    // grows by a small constant factor, FlashFill by roughly the data growth.
    let model = UserModel::default();
    let target = tokenize("734-422-8073");

    let small = study_case(10, 2, 42);
    let large = study_case(300, 6, 44);
    let small_truth = phone_ground_truth(&small.data);
    let large_truth = phone_ground_truth(&large.data);

    let clx_small = model
        .clx_times(&run_clx_user(&small.data, &small_truth, &target))
        .verification_secs;
    let clx_large = model
        .clx_times(&run_clx_user(&large.data, &large_truth, &target))
        .verification_secs;
    let ff_small = model
        .flashfill_times(&run_flashfill_user(&small.data, &small_truth, 40))
        .verification_secs;
    let ff_large = model
        .flashfill_times(&run_flashfill_user(&large.data, &large_truth, 40))
        .verification_secs;

    let clx_growth = clx_large / clx_small;
    let ff_growth = ff_large / ff_small;

    assert!(
        clx_growth < 4.0,
        "CLX verification should grow slowly, got {clx_growth:.1}x"
    );
    assert!(
        ff_growth > 8.0,
        "FlashFill verification should grow roughly with the data, got {ff_growth:.1}x"
    );
    assert!(
        ff_growth > 3.0 * clx_growth,
        "the gap between the systems is the paper's headline ({ff_growth:.1}x vs {clx_growth:.1}x)"
    );
}

#[test]
fn comprehension_gap_matches_figure_13() {
    let results = clx::baselines::comprehension_study(2019);
    let avg = |f: fn(&clx::baselines::ComprehensionResult) -> f64| {
        results.iter().map(f).sum::<f64>() / results.len() as f64
    };
    let clx_avg = avg(|r| r.clx);
    let ff_avg = avg(|r| r.flashfill);
    assert!(clx_avg >= 0.8, "CLX users predict the program's behaviour");
    assert!(
        clx_avg >= 1.5 * ff_avg.max(0.05),
        "CLX comprehension should be roughly twice FlashFill's ({clx_avg:.2} vs {ff_avg:.2})"
    );
}

#[test]
fn experiment_reports_render() {
    // The per-figure binaries must all produce non-empty reports.
    let seed = 7;
    for report in [
        clx_bench_report_smoke::fig11(seed),
        clx_bench_report_smoke::fig12(seed),
        clx_bench_report_smoke::tab5(seed),
        clx_bench_report_smoke::tab6(seed),
    ] {
        assert!(report.lines().count() >= 3);
    }
}

/// Small indirection so the test reads clearly; the facade crate does not
/// depend on `clx-bench`, so these call the same underlying pieces.
mod clx_bench_report_smoke {
    use clx::baselines::{run_clx_user, UserModel};
    use clx::datagen::{benchmark_suite, explainability_tasks, study_cases, suite_stats};
    use clx::tokenize;

    pub fn fig11(seed: u64) -> String {
        study_cases(seed)
            .iter()
            .map(|c| format!("{} {}\n", c.name, c.rows))
            .collect()
    }

    pub fn fig12(seed: u64) -> String {
        let model = UserModel::default();
        study_cases(seed)
            .iter()
            .map(|case| {
                let expected = super::phone_ground_truth(&case.data);
                let trace = run_clx_user(&case.data, &expected, &tokenize("734-422-8073"));
                format!(
                    "{} {:.0}\n",
                    case.name,
                    model.clx_times(&trace).verification_secs
                )
            })
            .collect()
    }

    pub fn tab5(seed: u64) -> String {
        explainability_tasks(seed)
            .iter()
            .map(|t| format!("{} {} {}\n", t.id, t.size(), t.data_type.name()))
            .collect()
    }

    pub fn tab6(seed: u64) -> String {
        suite_stats(&benchmark_suite(seed))
            .iter()
            .map(|s| format!("{} {} {:.1}\n", s.source, s.tests, s.avg_size))
            .collect()
    }
}
