//! Regression tests for the duplicated-values synthesis quirk.
//!
//! Columns holding repeated values used to synthesize an *empty* program:
//! constant discovery counted rows, so a value repeated N times "agreed" at
//! every token position, froze into one giant literal, and failed
//! synthesis — every row came back flagged. The shared column data plane
//! weights constant discovery by *distinct* value, so repeats are no longer
//! evidence of constancy and the normal program comes back.

use clx::{tokenize, ClxSession, Column, TransformReport};

#[test]
fn repeated_value_column_synthesizes_a_working_program() {
    // One value, many rows: the degenerate case that used to flag everything.
    let session = ClxSession::new(vec!["Dr. Eran Yahav".to_string(); 100])
        .label(tokenize("Eran Yahav"))
        .unwrap();

    let report = session.apply().unwrap();
    assert_eq!(report.flagged_count(), 0, "no row may be flagged");
    assert_eq!(report.transformed_count(), 100);
    assert!(report.iter_rows().all(|r| r.value() == "Eran Yahav"));
    // Columnar reporting: 100 rows, one stored outcome.
    assert_eq!(report.distinct_outcomes().len(), 1);
}

#[test]
fn duplicate_heavy_phone_column_transforms_every_repeat() {
    // A handful of distinct phone formats, each heavily repeated.
    let mut data = Vec::new();
    for i in 0..300 {
        data.push(match i % 3 {
            0 => "(734) 645-8397".to_string(),
            1 => "(734)586-7252".to_string(),
            _ => "734.236.3466".to_string(),
        });
    }
    let session = ClxSession::new(data)
        .label(tokenize("734-422-8073"))
        .unwrap();
    let report = session.apply().unwrap();
    assert!(
        report.is_perfect(),
        "flagged: {:?}",
        report.flagged_values()
    );
    assert_eq!(report.transformed_count(), 300);
    // Duplicates share one outcome: the distinct output set is tiny.
    let outputs: std::collections::HashSet<String> = report.values().into_iter().collect();
    assert_eq!(outputs.len(), 3);
}

#[test]
fn engine_and_sequential_agree_on_duplicated_columns() {
    let data: Vec<String> = (0..1_000)
        .map(|i| match i % 5 {
            0..=2 => "(555) 123-4567".to_string(),
            3 => "N/A".to_string(),
            _ => "555.123.4567".to_string(),
        })
        .collect();
    let session = ClxSession::new(data.clone())
        .label(tokenize("734-422-8073"))
        .unwrap();

    let sequential = session.apply().unwrap();
    let via_column = session.apply_parallel().unwrap();
    let compiled = session.compile().unwrap();
    let via_rows = TransformReport::from_batch(compiled.execute(&data));

    assert_eq!(sequential, via_column);
    assert_eq!(sequential, via_rows);
    assert_eq!(sequential.flagged_count(), 200); // the N/A rows
}

#[test]
fn session_column_dedups_and_caches_leaves() {
    let session = ClxSession::new(vec![
        "a-1".to_string(),
        "a-1".to_string(),
        "b-2".to_string(),
    ]);
    let column: &Column = session.data();
    assert_eq!(column.len(), 3);
    assert_eq!(column.distinct_count(), 2);
    for value in column.distinct_values() {
        assert_eq!(value.leaf(), &tokenize(value.text()));
    }
    // The hierarchy rows fan back out to all duplicates.
    assert_eq!(session.hierarchy().total_rows(), 3);
}
