//! Property tests locking down the streaming data plane — in particular
//! the bounded-memory paths added for untrusted input.
//!
//! The core equivalence: for *random* row sets, *random* chunk splits and
//! *random* [`StreamBudget`]s (including `max_distinct: 1`, arena-byte
//! caps, the `Fallback` policy and unbounded), pushing the rows through a
//! [`ColumnStream`] chunk by chunk is row-for-row identical to one-shot
//! [`CompiledProgram::execute_column`] over the whole column. Eviction and
//! fallback may only change *retained memory*, never an outcome.
//!
//! The incremental re-verification properties live here too: a report
//! patched through a `ProgramDelta` equals a fresh full recompute under
//! the new program (row for row and in the weighted stats), a stream
//! whose program is hot-swapped mid-flight equals a fresh stream of the
//! new program on the remaining chunks (under every budget, including
//! eviction), and session-level `reverify` after arbitrary repair
//! sequences equals a fresh `apply`.
//!
//! Also here: the sharded [`ColumnBuilder`] byte-identity property on
//! random inputs (empty values, Unicode, single-distinct, all-distinct —
//! not just the curated duplicate-heavy workload of
//! `tests/column_builder.rs`), and the adversarial 1M-row bounded-memory
//! acceptance test.
//!
//! Run with `PROPTEST_CASES=256` (CI does, in release) for real coverage;
//! the default is 64 cases per property.

use std::sync::{Arc, OnceLock};

use proptest::prelude::*;

use clx::engine::{Decision, DispatchCache};
use clx::pattern::automaton::MultiPatternAutomaton;
use clx::pattern::{tokenize, Quantifier, TokenSlice};
use clx::unifi::{Branch, Expr, Program, StringExpr};
use clx::{
    Column, ColumnBuilder, ColumnStream, CompiledProgram, InMemorySink, MetricSink, NoopSink,
    Pattern, RowOutcome, StreamBudget, Token, TokenClass,
};

/// The phone-rewrite program every streaming test in the workspace uses:
/// `ddd.ddd.dddd` rewrites to `ddd-ddd-dddd`, dashed rows conform,
/// everything else is flagged — so random rows exercise all three
/// [`RowOutcome`] variants.
fn program() -> Arc<CompiledProgram> {
    static PROGRAM: OnceLock<Arc<CompiledProgram>> = OnceLock::new();
    Arc::clone(PROGRAM.get_or_init(|| {
        let program = Program::new(vec![Branch::new(
            tokenize("734.236.3466"),
            Expr::concat(vec![
                StringExpr::extract(1),
                StringExpr::const_str("-"),
                StringExpr::extract(3),
                StringExpr::const_str("-"),
                StringExpr::extract(5),
            ]),
        )]);
        Arc::new(CompiledProgram::compile(&program, &tokenize("734-422-8073")).unwrap())
    }))
}

/// Strings over the characters CLX columns contain, plus multi-byte
/// Unicode; may be empty.
fn data_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            proptest::char::range('a', 'z'),
            proptest::char::range('A', 'Z'),
            proptest::char::range('0', '9'),
            Just('-'),
            Just('.'),
            Just(' '),
            Just('/'),
            Just('€'),
            Just('π'),
        ],
        0..14,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// A phone-shaped string: frequently transformed or conforming, so the
/// interesting outcome variants are well represented.
fn phone_string() -> impl Strategy<Value = String> {
    (0..2usize).prop_map(|sep| {
        if sep == 0 {
            "734.236.3466".to_string()
        } else {
            "734-422-8073".to_string()
        }
    })
}

/// Random row sets of every shape the bounded paths must survive: mixed
/// random text, phone-heavy duplicates, a single distinct value repeated,
/// and all-distinct (the adversarial shape that forces eviction).
fn workload() -> impl Strategy<Value = Vec<String>> {
    prop_oneof![
        proptest::collection::vec(data_string(), 0..60),
        proptest::collection::vec(prop_oneof![phone_string(), data_string()], 1..60),
        // Single distinct value, many rows.
        (data_string(), 1..40usize).prop_map(|(s, n)| vec![s; n]),
        // All-distinct: suffix every generated string with its row index.
        proptest::collection::vec(data_string(), 1..40).prop_map(|rows| {
            rows.into_iter()
                .enumerate()
                .map(|(i, s)| format!("{s}#{i:03}"))
                .collect()
        }),
    ]
}

/// Random chunk lengths; the stream consumes them in order, with one final
/// chunk for whatever remains (possibly empty splits included).
fn chunk_splits() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..9usize, 0..12)
}

/// Random budgets, including the degenerate `max_distinct: 1`, byte caps,
/// the `Fallback` policy, and fully unbounded.
fn budgets() -> impl Strategy<Value = StreamBudget> {
    prop_oneof![
        Just(StreamBudget::unbounded()),
        Just(StreamBudget::max_distinct(1)),
        Just(StreamBudget::max_distinct(2)),
        Just(StreamBudget::max_distinct(5)),
        Just(StreamBudget::max_distinct(8).with_max_arena_bytes(64)),
        Just(StreamBudget::unbounded().with_max_arena_bytes(24)),
        Just(StreamBudget::max_distinct(1).fallback()),
        Just(StreamBudget::max_distinct(4).fallback()),
    ]
}

/// Split `rows` into chunks of the generated lengths (remainder last) and
/// push them through a stream with `budget`, returning every row outcome
/// in order.
fn stream_in_chunks(
    rows: &[String],
    splits: &[usize],
    budget: StreamBudget,
) -> (Vec<RowOutcome>, clx::StreamSummary) {
    stream_in_chunks_observed(rows, splits, budget, None)
}

/// [`stream_in_chunks`] with an optional metric sink attached, for the
/// telemetry-identity property.
fn stream_in_chunks_observed(
    rows: &[String],
    splits: &[usize],
    budget: StreamBudget,
    sink: Option<Arc<dyn MetricSink>>,
) -> (Vec<RowOutcome>, clx::StreamSummary) {
    let mut stream = ColumnStream::with_budget(program(), budget);
    if let Some(sink) = sink {
        stream = stream.with_telemetry(sink);
    }
    let mut streamed: Vec<RowOutcome> = Vec::new();
    let mut rest = rows;
    for &len in splits {
        let take = len.min(rest.len());
        let (chunk, tail) = rest.split_at(take);
        rest = tail;
        streamed.extend(stream.push_rows(chunk).iter_rows().cloned());
        // The bounded invariant: at every chunk boundary the live set is
        // capped by the budget plus the chunk's own (pinned) values.
        if budget.policy == clx::BudgetPolicy::Evict {
            assert!(
                stream.interner().live_distinct_count()
                    <= budget.max_distinct.saturating_add(chunk.len()),
                "live set exceeded budget + pinned chunk"
            );
        }
    }
    streamed.extend(stream.push_rows(rest).iter_rows().cloned());
    (streamed, stream.finish())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// K-chunk bounded streaming == one-shot column execution, for every
    /// budget. The columnar one-shot report is the reference the paper's
    /// verifiability story rests on; a budget may only change memory.
    #[test]
    fn chunked_budgeted_stream_equals_one_shot(
        rows in workload(),
        splits in chunk_splits(),
        budget in budgets(),
    ) {
        let one_shot = program().execute_column(&Column::from_rows(rows.clone()));
        let reference: Vec<RowOutcome> = one_shot.iter_rows().cloned().collect();
        let (streamed, summary) = stream_in_chunks(&rows, &splits, budget);
        prop_assert!(streamed == reference, "budget {:?} diverged", budget);
        prop_assert_eq!(summary.stats, one_shot.stats);
        prop_assert_eq!(summary.rows(), rows.len());
        if budget.is_unbounded() {
            prop_assert_eq!(summary.evictions, 0);
            prop_assert!(!summary.degraded);
        }
    }

    /// Bounded and unbounded streams are row-for-row identical over the
    /// *same* chunking — the direct statement that eviction/fallback never
    /// changes an outcome, independent of the one-shot reference.
    #[test]
    fn bounded_stream_equals_unbounded_stream(
        rows in workload(),
        splits in chunk_splits(),
        budget in budgets(),
    ) {
        let (bounded, bounded_summary) = stream_in_chunks(&rows, &splits, budget);
        let (unbounded, unbounded_summary) =
            stream_in_chunks(&rows, &splits, StreamBudget::unbounded());
        prop_assert_eq!(bounded, unbounded);
        prop_assert_eq!(bounded_summary.stats, unbounded_summary.stats);
    }

    /// Attaching telemetry never changes an outcome: over the same random
    /// rows, chunking and budget, the bare stream, a `NoopSink` stream and
    /// an `InMemorySink` stream are row-for-row identical — sinks observe,
    /// they do not participate. The sink's own row counter must agree with
    /// the summary it observed.
    #[test]
    fn telemetry_never_changes_outcomes(
        rows in workload(),
        splits in chunk_splits(),
        budget in budgets(),
    ) {
        let (bare, bare_summary) = stream_in_chunks(&rows, &splits, budget);
        let (noop, noop_summary) = stream_in_chunks_observed(
            &rows, &splits, budget, Some(Arc::new(NoopSink)),
        );
        let observer = InMemorySink::shared();
        let (observed, observed_summary) = stream_in_chunks_observed(
            &rows, &splits, budget, Some(Arc::clone(&observer) as Arc<dyn MetricSink>),
        );
        prop_assert_eq!(&bare, &noop);
        prop_assert_eq!(&bare, &observed);
        prop_assert_eq!(bare_summary.stats, noop_summary.stats);
        prop_assert_eq!(bare_summary.stats, observed_summary.stats);
        prop_assert_eq!(bare_summary.evictions, observed_summary.evictions);
        prop_assert_eq!(
            bare_summary.decision_cache_hits,
            observed_summary.decision_cache_hits
        );

        let snap = observer.snapshot();
        prop_assert_eq!(
            snap.counter("engine.stream.rows").unwrap_or(0),
            rows.len() as u64
        );
        prop_assert_eq!(
            snap.counter("engine.stream.decision_misses").unwrap_or(0),
            observed_summary.decision_cache_misses
        );
    }

    /// Sharded column construction is byte-identical to sequential on
    /// random inputs: same distinct order, row map, interned bytes, leaf
    /// ids and cached token streams — for every shard count.
    #[test]
    fn sharded_builder_matches_sequential(rows in workload(), shards in 1..9usize) {
        let sequential = Column::from_rows(rows.clone());
        let sharded = ColumnBuilder::new().shards(shards).build(rows);
        prop_assert_eq!(sequential.len(), sharded.len());
        prop_assert_eq!(sequential.distinct_count(), sharded.distinct_count());
        prop_assert_eq!(sequential.leaf_count(), sharded.leaf_count());
        prop_assert_eq!(sequential.interned_bytes(), sharded.interned_bytes());
        prop_assert_eq!(sequential.row_map().as_ref(), sharded.row_map().as_ref());
        for (a, b) in sequential.distinct_values().zip(sharded.distinct_values()) {
            prop_assert_eq!(a.text(), b.text());
            prop_assert_eq!(a.leaf(), b.leaf());
            prop_assert_eq!(a.leaf_id(), b.leaf_id());
            prop_assert_eq!(a.token_slices().len(), b.token_slices().len());
            prop_assert_eq!(
                a.rows().collect::<Vec<_>>(),
                b.rows().collect::<Vec<_>>()
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Fused-dispatch identity: for random programs and values, the fused
// decision automaton and the per-branch Pike-VM loop are the same function.
// ---------------------------------------------------------------------------

/// A random pattern token: base classes (including the `<A>`/`<AN>` parent
/// classes and `+` quantifiers the refinement produces) and literals —
/// transparent separators as well as alphanumeric literals like `CPT`,
/// which make the pattern opaque and exercise the per-value check steps.
fn any_token() -> impl Strategy<Value = Token> {
    let class = || {
        prop_oneof![
            Just(TokenClass::Digit),
            Just(TokenClass::Lower),
            Just(TokenClass::Upper),
            Just(TokenClass::Alpha),
            Just(TokenClass::AlphaNumeric),
        ]
    };
    prop_oneof![
        (class(), 1..4usize).prop_map(|(c, n)| Token::base(c, n)),
        class().prop_map(Token::plus),
        prop_oneof![
            Just("-"),
            Just("."),
            Just("/"),
            Just(" "),
            Just("€"),
            Just("CPT"),
            Just("x"),
        ]
        .prop_map(Token::literal),
    ]
}

/// Random patterns, occasionally too wide for the automaton's bit budget
/// (`<D>300`), so the recorded width fallback is part of the tested space
/// (the shim's `prop_oneof!` is unweighted; repeating the random arm keeps
/// the wide pattern at ~1 in 6).
fn any_pattern() -> impl Strategy<Value = Pattern> {
    let tokens = || proptest::collection::vec(any_token(), 0..5).prop_map(Pattern::new);
    prop_oneof![
        tokens(),
        tokens(),
        tokens(),
        tokens(),
        tokens(),
        Just(Pattern::new(vec![Token::base(TokenClass::Digit, 300)])),
    ]
}

/// A random `(program, target)` pair that always compiles: every branch
/// rewrite is either a constant or `extract(1)` (valid for any non-empty
/// source pattern).
fn any_program() -> impl Strategy<Value = (Program, Pattern)> {
    let branch = (any_pattern(), 0..2usize).prop_map(|(pattern, extract)| {
        let expr = if extract == 1 && !pattern.is_empty() {
            Expr::concat(vec![StringExpr::extract(1), StringExpr::const_str("!")])
        } else {
            Expr::concat(vec![StringExpr::const_str("X")])
        };
        Branch::new(pattern, expr)
    });
    (proptest::collection::vec(branch, 1..4), any_pattern())
        .prop_map(|(branches, target)| (Program::new(branches), target))
}

/// A string matching `pattern` (runs of `reps` characters for `+` tokens),
/// so generated values hit Conforming/Branch decisions, not just Flagged.
fn sample_value(pattern: &Pattern, reps: usize) -> String {
    let mut out = String::new();
    for token in pattern.tokens() {
        if let Some(lit) = token.literal_value() {
            out.push_str(lit);
            continue;
        }
        let n = match token.quantifier {
            Quantifier::Exact(n) => n,
            Quantifier::OneOrMore => reps,
        };
        let c = match token.class {
            TokenClass::Digit => '7',
            TokenClass::Lower => 'k',
            TokenClass::Upper => 'Q',
            TokenClass::Alpha => 'm',
            TokenClass::AlphaNumeric => '5',
            TokenClass::Literal(_) => continue,
        };
        out.extend(std::iter::repeat_n(c, n));
    }
    out
}

/// A random *fused-eligible* (transparent) pattern token: any class —
/// including the `<A>`/`<AN>` parents and `+` quantifiers — but only
/// non-alphanumeric literals, since opaque patterns are kept out of the
/// fused automaton. The wide arm (runs of 30–45) pushes segments across
/// 64-bit word boundaries so reconstruction must follow cross-word
/// carries.
fn transparent_token() -> impl Strategy<Value = Token> {
    let class = || {
        prop_oneof![
            Just(TokenClass::Digit),
            Just(TokenClass::Lower),
            Just(TokenClass::Upper),
            Just(TokenClass::Alpha),
            Just(TokenClass::AlphaNumeric),
        ]
    };
    prop_oneof![
        // Short exact runs, often adjacent and same-class.
        (class(), 1..5usize).prop_map(|(c, n)| Token::base(c, n)),
        (class(), 1..5usize).prop_map(|(c, n)| Token::base(c, n)),
        (class(), 1..5usize).prop_map(|(c, n)| Token::base(c, n)),
        // Wide exact runs: multi-word carry coverage.
        (class(), 30..45usize).prop_map(|(c, n)| Token::base(c, n)),
        class().prop_map(Token::plus),
        class().prop_map(Token::plus),
        prop_oneof![Just("-"), Just("."), Just("/"), Just(" "), Just("€")].prop_map(Token::literal),
        prop_oneof![Just("-"), Just("."), Just("/"), Just(" "), Just("€")].prop_map(Token::literal),
    ]
}

/// Random fused-eligible patterns (non-empty; width may still overflow the
/// automaton when several are combined — callers skip that draw).
fn transparent_pattern() -> impl Strategy<Value = Pattern> {
    proptest::collection::vec(transparent_token(), 1..6).prop_map(Pattern::new)
}

/// Convert `Pattern::split` byte-offset slices to the char-index ranges
/// [`MultiPatternAutomaton::split_boundaries`] reports.
fn split_char_ranges(value: &str, slices: &[TokenSlice]) -> Vec<(usize, usize)> {
    let to_char = |byte: usize| value[..byte].chars().count();
    slices
        .iter()
        .map(|s| (to_char(s.start), to_char(s.end)))
        .collect()
}

/// [`stream_in_chunks`] over an explicit program instead of the shared
/// phone program.
fn stream_program_in_chunks(
    program: &Arc<CompiledProgram>,
    rows: &[String],
    splits: &[usize],
    budget: StreamBudget,
) -> (Vec<RowOutcome>, clx::StreamSummary) {
    let mut stream = ColumnStream::with_budget(Arc::clone(program), budget);
    let mut streamed: Vec<RowOutcome> = Vec::new();
    let mut rest = rows;
    for &len in splits {
        let take = len.min(rest.len());
        let (chunk, tail) = rest.split_at(take);
        rest = tail;
        streamed.extend(stream.push_rows(chunk).iter_rows().cloned());
    }
    streamed.extend(stream.push_rows(rest).iter_rows().cloned());
    (streamed, stream.finish())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fused automaton and the per-branch loop are the same decision
    /// function: for random programs (transparent, opaque, `+`-quantified,
    /// fallback-forcing wide) and random values — pattern-derived matches
    /// and arbitrary junk — `decide` and `transform_one` agree exactly,
    /// each side deciding cold through its own fresh [`DispatchCache`].
    #[test]
    fn fused_decisions_equal_per_branch_decisions(
        program_and_target in any_program(),
        extra in proptest::collection::vec(data_string(), 0..12),
        reps in 1..3usize,
    ) {
        let (program, target) = program_and_target;
        let fused = CompiledProgram::compile(&program, &target).unwrap();
        let plain = CompiledProgram::compile(&program, &target)
            .unwrap()
            .without_fused();
        prop_assert!(!plain.fused_active());

        let mut values: Vec<String> = program
            .branches
            .iter()
            .map(|b| sample_value(&b.pattern, reps))
            .collect();
        values.push(sample_value(&target, reps));
        values.push(String::new());
        values.extend(extra);

        let mut fused_cache = DispatchCache::new();
        let mut plain_cache = DispatchCache::new();
        for value in &values {
            let fd = fused.decide(value);
            let pd = plain.decide(value);
            prop_assert!(fd == pd, "decide diverged on {:?}: {:?} vs {:?}", value, fd, pd);
            if fused.fused_active() {
                // Transparent branches decide identically for every value
                // sharing a leaf, so a fused Branch/Conforming decision on
                // a transparent program is exactly the automaton's word.
                prop_assert!(matches!(fd, Decision::Conforming | Decision::Branch(_) | Decision::Flagged));
            }
            let ft = fused.transform_one(&mut fused_cache, value);
            let pt = plain.transform_one(&mut plain_cache, value);
            prop_assert!(ft == pt, "transform diverged on {:?}: {:?} vs {:?}", value, ft, pt);
        }
    }

    /// Fused-on and fused-off streams are row-for-row identical over the
    /// same rows, chunking and budget — the automaton is an optimization
    /// of the cold path, never a behavior change, end to end through
    /// interning, eviction and decision caching.
    #[test]
    fn fused_stream_equals_per_branch_stream(
        program_and_target in any_program(),
        rows in workload(),
        splits in chunk_splits(),
        budget in budgets(),
        reps in 1..3usize,
    ) {
        let (program, target) = program_and_target;
        let fused =
            Arc::new(CompiledProgram::compile(&program, &target).unwrap());
        let plain = Arc::new(
            CompiledProgram::compile(&program, &target)
                .unwrap()
                .without_fused(),
        );

        // Mix pattern-derived matching values into the random rows so the
        // streams exercise Branch/Conforming decisions too.
        let mut rows = rows;
        for branch in &program.branches {
            rows.push(sample_value(&branch.pattern, reps));
        }
        rows.push(sample_value(&target, reps));

        let (a, a_summary) = stream_program_in_chunks(&fused, &rows, &splits, budget);
        let (b, b_summary) = stream_program_in_chunks(&plain, &rows, &splits, budget);
        prop_assert_eq!(a, b);
        prop_assert_eq!(a_summary.stats, b_summary.stats);
        prop_assert_eq!(a_summary.rows(), rows.len());
    }

    /// The tentpole lock: boundaries reconstructed from the automaton's
    /// accepting path equal `Pattern::split` token for token — over random
    /// fused-eligible multi-segment programs (adjacent same-class tokens,
    /// plus-runs, wide multi-word segments, segment-boundary offsets) and
    /// both pattern-derived and junk values. And the reconstruction never
    /// declines on an accepted transparent segment: `Some` exactly when the
    /// segment accepts, `None` exactly when `Pattern::split` fails.
    #[test]
    fn derived_split_boundaries_equal_pattern_split(
        patterns in proptest::collection::vec(transparent_pattern(), 1..4),
        junk in proptest::collection::vec(data_string(), 0..6),
        reps in 1..5usize,
    ) {
        let slots: Vec<Option<&Pattern>> = patterns.iter().map(Some).collect();
        let Ok(automaton) = MultiPatternAutomaton::build(&slots) else {
            // Combined width overflow: the engine would not fuse this
            // program at all, so there is no derived path to test.
            return Ok(());
        };
        let mut values: Vec<String> =
            patterns.iter().map(|p| sample_value(p, reps)).collect();
        values.extend(junk);
        values.push(String::new());
        for value in &values {
            let leaf = tokenize(value);
            let Some(run) = automaton.classify_recorded(&leaf) else {
                continue;
            };
            for (index, pattern) in patterns.iter().enumerate() {
                let derived = automaton.split_boundaries(&run, index);
                let reference = pattern
                    .split(value)
                    .ok()
                    .map(|slices| split_char_ranges(value, &slices));
                prop_assert!(
                    derived == reference,
                    "segment {} of {:?} on {:?}: derived {:?} vs split {:?}",
                    index, pattern, value, derived, reference
                );
            }
        }
    }

    /// Deriving splits from the accepting path is an optimization, never a
    /// behavior change: over the same random programs, rows, chunking and
    /// budget, a derived-splits stream and a `Pattern::split` stream are
    /// row-for-row identical end to end.
    #[test]
    fn derived_split_stream_equals_pattern_split_stream(
        program_and_target in any_program(),
        rows in workload(),
        splits in chunk_splits(),
        budget in budgets(),
        reps in 1..3usize,
    ) {
        let (program, target) = program_and_target;
        let derived =
            Arc::new(CompiledProgram::compile(&program, &target).unwrap());
        let split = Arc::new(
            CompiledProgram::compile(&program, &target)
                .unwrap()
                .without_derived_splits(),
        );

        let mut rows = rows;
        for branch in &program.branches {
            rows.push(sample_value(&branch.pattern, reps));
        }
        rows.push(sample_value(&target, reps));

        let (a, a_summary) = stream_program_in_chunks(&derived, &rows, &splits, budget);
        let (b, b_summary) = stream_program_in_chunks(&split, &rows, &splits, budget);
        prop_assert_eq!(a, b);
        prop_assert_eq!(a_summary.stats, b_summary.stats);
    }
}

// ---------------------------------------------------------------------------
// Incremental re-verification: a delta-patched report / hot-swapped stream
// is indistinguishable from a full recompute under the new program.
// ---------------------------------------------------------------------------

/// A "new" program derived from `old`: an unrelated random program (the
/// worst case for the delta — target and every branch may change), the
/// same program recompiled (the identity delta), or a one-branch repair
/// (the sharp case the whole machinery exists for).
fn derive_new_program(
    old: &(Program, Pattern),
    other: (Program, Pattern),
    mutate: usize,
    which: usize,
) -> (Program, Pattern) {
    match mutate {
        0 => other,
        1 => old.clone(),
        _ => {
            let mut program = old.0.clone();
            let index = which % program.branches.len();
            program.branches[index].expr = Expr::concat(vec![StringExpr::const_str("Z")]);
            (program, old.1.clone())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Patching a finished report through a [`ProgramDelta`] equals a
    /// fresh full recompute under the new program — row for row and in
    /// the multiplicity-weighted stats — for identity, repair-shaped and
    /// arbitrary program changes.
    #[test]
    fn patched_report_equals_full_recompute(
        old_pt in any_program(),
        other in any_program(),
        mutate in 0..3usize,
        which in 0..4usize,
        rows in workload(),
        reps in 1..3usize,
    ) {
        let (new_program, new_target) = derive_new_program(&old_pt, other, mutate, which);
        let (old_program, old_target) = old_pt;
        let old = CompiledProgram::compile(&old_program, &old_target).unwrap();
        let new = CompiledProgram::compile(&new_program, &new_target).unwrap();

        // Mix in values the branches and targets actually match, so the
        // delta's affected sets are non-trivial.
        let mut rows = rows;
        for branch in old_program.branches.iter().chain(new_program.branches.iter()) {
            rows.push(sample_value(&branch.pattern, reps));
        }
        rows.push(sample_value(&old_target, reps));
        rows.push(sample_value(&new_target, reps));
        let column = Column::from_rows(rows);

        let mut report = old.execute_column(&column);
        let delta = clx::ProgramDelta::between(&old, &new);
        let stats = report.patch(&delta, &new);
        let expected = new.execute_column(&column);
        prop_assert!(
            report.iter_rows().eq(expected.iter_rows()),
            "patched report diverged from full recompute (mutate {})",
            mutate
        );
        prop_assert_eq!(report.stats, expected.stats);
        prop_assert_eq!(&report.target, &expected.target);
        prop_assert!(stats.distincts_redecided <= column.distinct_count());
        if mutate == 1 {
            // Identity delta: nothing may be re-decided.
            prop_assert_eq!(stats.distincts_redecided, 0);
        }
    }

    /// Hot-swapping a stream's program mid-flight equals restarting a
    /// fresh stream of the new program on the remaining chunks — under
    /// every budget, including eviction and fallback.
    #[test]
    fn swapped_stream_equals_fresh_stream_of_new_program(
        old_pt in any_program(),
        other in any_program(),
        mutate in 0..3usize,
        which in 0..4usize,
        rows in workload(),
        splits in chunk_splits(),
        budget in budgets(),
        switch_at in 0..8usize,
        reps in 1..3usize,
    ) {
        let (new_program, new_target) = derive_new_program(&old_pt, other, mutate, which);
        let (old_program, old_target) = old_pt;
        let old = Arc::new(CompiledProgram::compile(&old_program, &old_target).unwrap());
        let new = Arc::new(CompiledProgram::compile(&new_program, &new_target).unwrap());

        let mut rows = rows;
        for branch in old_program.branches.iter().chain(new_program.branches.iter()) {
            rows.push(sample_value(&branch.pattern, reps));
        }
        rows.push(sample_value(&old_target, reps));
        rows.push(sample_value(&new_target, reps));

        // Materialize the chunk list (remainder last, like the streams).
        let mut chunks: Vec<&[String]> = Vec::new();
        let mut rest = rows.as_slice();
        for &len in &splits {
            let take = len.min(rest.len());
            let (chunk, tail) = rest.split_at(take);
            rest = tail;
            chunks.push(chunk);
        }
        chunks.push(rest);
        let boundary = switch_at % (chunks.len() + 1);

        let mut swapped = ColumnStream::with_budget(Arc::clone(&old), budget);
        let mut fresh = ColumnStream::with_budget(Arc::clone(&new), budget);
        let mut post_swap: Vec<RowOutcome> = Vec::new();
        let mut reference: Vec<RowOutcome> = Vec::new();
        for (index, chunk) in chunks.iter().enumerate() {
            if index == boundary {
                swapped.swap_program(Arc::clone(&new));
            }
            let report = swapped.push_rows(chunk);
            if index >= boundary {
                post_swap.extend(report.iter_rows().cloned());
                reference.extend(fresh.push_rows(chunk).iter_rows().cloned());
            }
        }
        if boundary == chunks.len() {
            swapped.swap_program(Arc::clone(&new));
        }
        prop_assert_eq!(post_swap, reference);
    }

    /// The full interactive loop: after *any* sequence of repairs
    /// (including rejected ones), [`ClxSession::reverify`] of the
    /// pre-repair report equals a fresh [`ClxSession::apply`] under the
    /// repaired program.
    ///
    /// [`ClxSession::reverify`]: clx::ClxSession::reverify
    /// [`ClxSession::apply`]: clx::ClxSession::apply
    #[test]
    fn reverified_report_equals_fresh_apply(
        rows in workload(),
        choices in proptest::collection::vec((0..8usize, 0..8usize), 0..4),
    ) {
        let mut rows = rows;
        rows.push("734-422-8073".to_string());
        let mut session = clx::ClxSession::new(rows)
            .label_by_example("734-422-8073")
            .unwrap();
        let baseline = session.apply().unwrap();
        let patterns: Vec<Pattern> = session.patterns().into_iter().map(|(p, _)| p).collect();
        for (which, choice) in choices {
            // Rejected repairs (pattern not a source, choice out of range)
            // are part of the property: they must not corrupt reverify.
            let _ = session.repair(&patterns[which % patterns.len()], choice);
        }
        let patched = session.reverify(&baseline).unwrap();
        let fresh = session.apply().unwrap();
        prop_assert_eq!(patched, fresh);
    }
}

/// The acceptance lock for the tentpole: an adversarial all-distinct
/// 1M-row stream under `StreamBudget { max_distinct: 10_000, .. }`
/// completes with flat, bounded interner + decision-cache memory, while
/// producing exactly the outcomes the unbounded semantics dictate.
#[test]
fn adversarial_all_distinct_million_row_stream_is_memory_bounded() {
    const ROWS: usize = 1_000_000;
    const CHUNK: usize = 10_000;
    const BUDGET: usize = 10_000;

    let mut stream = ColumnStream::with_budget(program(), StreamBudget::max_distinct(BUDGET));
    let mut peak = 0usize;
    let mut early_peak = 0usize; // peak over the first 10% of the stream
    let mut transformed = 0usize;
    for c in 0..(ROWS / CHUNK) {
        // Every row is a brand-new distinct value; most are phone-shaped
        // (transformed), every 7th is junk (flagged).
        let rows: Vec<String> = (0..CHUNK)
            .map(|i| {
                let n = c * CHUNK + i;
                if n % 7 == 3 {
                    format!("junk!{n:08}")
                } else {
                    format!("{:03}.{:03}.{:04}", n % 1000, (n / 1000) % 1000, n % 10_000)
                }
            })
            .collect();
        let report = stream.push_rows(&rows);
        transformed += report.stats.transformed;
        peak = peak.max(stream.memory_used());
        if c == ROWS / CHUNK / 10 - 1 {
            early_peak = peak;
        }
        assert!(
            stream.interner().live_distinct_count() <= BUDGET + CHUNK,
            "live set exceeded budget + pinned chunk at chunk {c}"
        );
    }

    // Flat memory: the peak over the whole stream is within 1.5x of the
    // peak after the first 10% — O(budget + chunk), not O(distinct).
    assert!(
        peak <= early_peak + early_peak / 2,
        "memory grew with stream length: early {early_peak}B, final {peak}B"
    );
    // Absolute sanity bound: ~20k live values of ~13 bytes plus caches
    // must stay in the single-digit-MB range, nowhere near the ~100s of
    // MB the unbounded interner would retain for 1M distinct values.
    assert!(peak < 32 << 20, "peak {peak}B not bounded");

    assert!(stream.evictions() >= (ROWS - BUDGET - CHUNK) as u64);
    let summary = stream.finish();
    assert_eq!(summary.rows(), ROWS);
    assert_eq!(summary.stats.transformed, transformed);
    assert!(summary.stats.flagged >= ROWS / 7);
    assert_eq!(summary.peak_memory_bytes, peak);
    assert!(!summary.degraded);
}
