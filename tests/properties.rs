//! Cross-crate property-based tests of the core invariants the paper's
//! correctness argument rests on (tokenization, hierarchy coverage,
//! alignment soundness, explanation equivalence, regex engine consistency).

use proptest::prelude::*;

use clx::cluster::PatternProfiler;
use clx::pattern::{parse_pattern, tokenize};
use clx::regex::Regex;
use clx::synth::{align, validate};
use clx::unifi::{eval_expr, explain_branch, Branch};

/// Strategy: strings drawn from the kind of characters CLX columns contain.
fn data_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            proptest::char::range('a', 'z'),
            proptest::char::range('A', 'Z'),
            proptest::char::range('0', '9'),
            Just('-'),
            Just('.'),
            Just(' '),
            Just('('),
            Just(')'),
            Just('/'),
            Just('@'),
        ],
        0..24,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// Strategy: shorter strings for the quadratic alignment-enumeration tests.
fn short_data_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            proptest::char::range('a', 'z'),
            proptest::char::range('A', 'Z'),
            proptest::char::range('0', '9'),
            Just('-'),
            Just('.'),
            Just(' '),
            Just('/'),
        ],
        1..9,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// Strategy: a small column of such strings.
fn data_column() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(data_string(), 1..20)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The tokenizer always produces a pattern that matches its own input,
    /// and the notation round-trips through the parser.
    #[test]
    fn tokenize_roundtrip(s in data_string()) {
        let pattern = tokenize(&s);
        prop_assert!(pattern.matches(&s));
        let reparsed = parse_pattern(&pattern.notation()).unwrap();
        prop_assert_eq!(&pattern, &reparsed);
        // The split slices reconstruct the original string.
        let rebuilt: String = pattern.split(&s).unwrap().iter().map(|t| t.text.clone()).collect();
        prop_assert_eq!(rebuilt, s);
    }

    /// Profiling covers every row exactly once, every row matches its leaf
    /// pattern, and every root covers every leaf below it.
    #[test]
    fn hierarchy_invariants(column in data_column()) {
        let hierarchy = PatternProfiler::new().profile(&column);
        prop_assert!(hierarchy.check_invariants().is_ok());
        for (i, value) in column.iter().enumerate() {
            let leaf = hierarchy.leaf_of_row(i).expect("row in a leaf");
            prop_assert!(leaf.pattern.matches(value));
        }
    }

    /// Alignment soundness (Appendix A): every plan enumerated from the DAG,
    /// evaluated on a string of the source pattern, produces a string that
    /// matches the target pattern.
    #[test]
    fn alignment_soundness(src in short_data_string(), tgt in short_data_string()) {
        let source = tokenize(&src);
        let target = tokenize(&tgt);
        let dag = align(&source, &target);
        for plan in dag.enumerate_plans(64) {
            let out = eval_expr(&plan, &source, &src).unwrap();
            prop_assert!(target.matches(&out), "plan {} gave {:?}", plan, out);
        }
    }

    /// If validation rejects a source pattern for having fewer digits than
    /// the target requires, then no alignment path exists that avoids
    /// inventing digit content — i.e. validate never rejects something the
    /// aligner could fully solve with extraction of digit runs only.
    #[test]
    fn validate_is_consistent_with_q(src in data_string(), tgt in data_string()) {
        let source = tokenize(&src);
        let target = tokenize(&tgt);
        // Q-validation passing is implied whenever the patterns are equal.
        if source == target {
            prop_assert!(validate(&source, &target));
        }
    }

    /// Explanation equivalence: for any branch built from an enumerated
    /// plan, executing the explained Replace operation gives exactly the
    /// same output as evaluating the UniFi expression.
    #[test]
    fn explanation_matches_dsl(src in short_data_string(), tgt in short_data_string()) {
        let source = tokenize(&src);
        let target = tokenize(&tgt);
        let dag = align(&source, &target);
        for plan in dag.enumerate_plans(16) {
            let branch = Branch::new(source.clone(), plan.clone());
            let op = explain_branch(&branch).unwrap();
            let via_dsl = eval_expr(&plan, &source, &src).unwrap();
            let via_replace = op.apply(&src).expect("source string matches its own pattern");
            prop_assert_eq!(via_dsl, via_replace);
        }
    }

    /// The pattern-derived anchored regex accepts exactly the strings the
    /// pattern matches (checked on the generating string and mutations).
    #[test]
    fn pattern_regex_agrees_with_pattern_matching(s in data_string(), probe in data_string()) {
        let pattern = tokenize(&s);
        let regex = Regex::new(&pattern.to_regex()).unwrap();
        prop_assert!(regex.is_full_match(&s) || s.is_empty());
        prop_assert_eq!(regex.is_full_match(&probe), pattern.matches(&probe));
    }

    /// replace_all never panics and leaves non-matching strings untouched
    /// for anchored pattern regexes.
    #[test]
    fn replace_all_total(s in data_string(), probe in data_string()) {
        prop_assume!(!s.is_empty());
        let pattern = tokenize(&s);
        let regex = Regex::new(&pattern.to_regex()).unwrap();
        let out = regex.replace_all(&probe, "X");
        if !pattern.matches(&probe) {
            prop_assert_eq!(out, probe);
        } else {
            prop_assert_eq!(out, "X");
        }
    }
}
