//! Cross-crate integration tests: complete Cluster–Label–Transform sessions
//! on the paper's running examples, exercising the public `clx` facade.

use clx::{parse_pattern, tokenize, ClxSession};

#[test]
fn motivating_example_phone_numbers() {
    let column: Vec<String> = [
        "(734) 645-8397",
        "(734) 763-1147",
        "(734)586-7252",
        "734-422-8073",
        "734-936-2447",
        "734.236.3466",
        "N/A",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let session = ClxSession::new(column);
    assert_eq!(session.patterns().len(), 5);

    let session = session.label(tokenize("734-422-8073")).unwrap();
    let report = session.apply().unwrap();

    assert_eq!(report.transformed_count(), 4);
    assert_eq!(report.conforming_count(), 2);
    assert_eq!(report.flagged_count(), 1);
    assert_eq!(report.flagged_values(), vec!["N/A"]);
    assert_eq!(
        report.values(),
        vec![
            "734-645-8397",
            "734-763-1147",
            "734-586-7252",
            "734-422-8073",
            "734-936-2447",
            "734-236-3466",
            "N/A",
        ]
    );
}

#[test]
fn explained_program_is_what_runs() {
    // The verifiability claim: the Replace operations shown to the user and
    // the internal UniFi program are behaviourally identical on the data.
    let column: Vec<String> = [
        "(734) 645-8397",
        "(734)586-7252",
        "734.236.3466",
        "734 422 8073",
        "734-422-8073",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let session = ClxSession::new(column)
        .label(tokenize("734-422-8073"))
        .unwrap();
    let checked = session.verify_explanation().unwrap();
    assert_eq!(checked, 4);

    // The rendered operation list looks like Figure 4.
    let listing = session.suggested_operations("column1").unwrap();
    assert!(listing.contains("Replace '/^"));
    assert!(listing.contains("{digit}"));
    assert!(listing.contains("with '"));
}

#[test]
fn example_5_medical_codes_with_generalized_label() {
    let column: Vec<String> = ["CPT-00350", "[CPT-00340", "[CPT-11536]", "CPT115"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let session = ClxSession::new(column)
        .label(parse_pattern("'['<U>+'-'<D>+']'").unwrap())
        .unwrap();
    let report = session.apply().unwrap();
    assert_eq!(
        report.values(),
        vec!["[CPT-00350]", "[CPT-00340]", "[CPT-11536]", "[CPT-115]"]
    );
    assert!(report.is_perfect());
}

#[test]
fn pattern_level_verification_shrinks_with_scale() {
    // The number of units the user must verify is the number of pattern
    // clusters, which stays fixed while the data grows.
    let small = clx::datagen::study_case(30, 4, 1);
    let large = clx::datagen::study_case(3_000, 4, 2);
    let small_patterns = ClxSession::new(small.data).patterns().len();
    let large_patterns = ClxSession::new(large.data).patterns().len();
    assert_eq!(small_patterns, 4);
    assert_eq!(large_patterns, 4);
}

#[test]
fn repair_interaction_fixes_ambiguous_dates() {
    let column: Vec<String> = ["25/12/2017", "13/04/2018", "28/02/2019", "12-25-2017"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let expected = ["12-25-2017", "04-13-2018", "02-28-2019", "12-25-2017"];

    let mut session = ClxSession::new(column)
        .label(tokenize("12-25-2017"))
        .unwrap();

    let source = parse_pattern("<D>2'/'<D>2'/'<D>4").unwrap();
    let alternatives = session.alternatives(&source).unwrap().len();
    assert!(alternatives >= 2);

    let mut fixed = false;
    for choice in 0..alternatives {
        session.repair(&source, choice);
        let out = session.apply().unwrap();
        if out.values() == expected {
            fixed = true;
            break;
        }
    }
    assert!(fixed, "one of the ranked alternatives swaps day and month");
}

#[test]
fn flagged_rows_are_never_modified() {
    let column: Vec<String> = ["N/A", "unknown", "(734) 645-8397"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let session = ClxSession::new(column.clone())
        .label(tokenize("734-422-8073"))
        .unwrap();
    let report = session.apply().unwrap();
    for (input, row) in column.iter().zip(report.iter_rows()) {
        if row.is_flagged() {
            assert_eq!(row.value(), input);
        }
    }
    assert_eq!(report.flagged_count(), 2);
}

#[test]
fn baseline_flashfill_round_trip_through_facade() {
    use clx::flashfill::{Example, FlashFill};
    let program = FlashFill::new()
        .learn(&[Example::new("(734) 645-8397", "734-645-8397")])
        .unwrap();
    assert_eq!(program.apply("(231) 555-0199").unwrap(), "231-555-0199");
}

#[test]
fn benchmark_suite_tasks_run_end_to_end() {
    // Smoke-run a handful of suite tasks through full CLX sessions.
    let suite = clx::datagen::benchmark_suite(0);
    for name in ["ff-phone", "bf-medical-ex3", "ff-date", "sygus-car-1"] {
        let task = suite.iter().find(|t| t.name == name).unwrap();
        let session = ClxSession::new(task.inputs.clone())
            .label(task.target_pattern())
            .unwrap();
        let report = session.apply().unwrap();
        // Every non-flagged output matches the labelled target pattern.
        for row in report.iter_rows() {
            if !row.is_flagged() {
                assert!(
                    task.target_pattern().matches(row.value()),
                    "task {name}: output {:?} does not match target",
                    row.value()
                );
            }
        }
    }
}
