//! The columnar `TransformReport` surface: `iter_rows()` must be
//! row-for-row identical to the per-row path the report replaced, while the
//! report itself stores only O(distinct) outcomes.

use clx::datagen::duplicate_heavy_case;
use clx::{tokenize, ClxSession, Labelled, TransformReport};

fn duplicate_heavy_session(rows: usize, distinct: usize, seed: u64) -> ClxSession<Labelled> {
    let case = duplicate_heavy_case(rows, distinct, seed);
    ClxSession::new(case.data)
        .label(tokenize(&case.target_example))
        .unwrap()
}

#[test]
fn iter_rows_is_row_identical_to_the_per_row_path() {
    // The duplicate-heavy datagen workload: 20k rows, ≤200 distinct values.
    let session = duplicate_heavy_session(20_000, 200, 11);
    let columnar = session.apply().unwrap();

    // The old per-row path: the compiled engine over the raw rows, which
    // stores one outcome per row (identity map).
    let rows = session.data().to_vec();
    let per_row = TransformReport::from_batch(session.compile().unwrap().execute(&rows));

    // Row-for-row identity, in order — variants and values both.
    assert_eq!(columnar.len(), per_row.len());
    for (i, (c, r)) in columnar.iter_rows().zip(per_row.iter_rows()).enumerate() {
        assert_eq!(c, r, "row {i} diverged");
        assert_eq!(columnar.row(i), per_row.row(i), "row {i} accessor diverged");
    }
    assert_eq!(columnar, per_row);
    assert_eq!(columnar.values(), per_row.values());
    assert_eq!(columnar.flagged_values(), per_row.flagged_values());
    assert_eq!(columnar.transformed_count(), per_row.transformed_count());
    assert_eq!(columnar.conforming_count(), per_row.conforming_count());
    assert_eq!(columnar.flagged_count(), per_row.flagged_count());
    assert!((columnar.conformance_ratio() - per_row.conformance_ratio()).abs() < 1e-12);

    // And the storage claim behind the redesign: O(distinct) outcomes on
    // the columnar side, O(rows) on the per-row side.
    assert_eq!(
        columnar.distinct_outcomes().len(),
        session.data().distinct_count()
    );
    assert!(columnar.distinct_outcomes().len() <= 200);
    assert_eq!(per_row.distinct_outcomes().len(), 20_000);
}

#[test]
fn empty_column_report() {
    let session = ClxSession::new(Vec::new()).label(tokenize("123")).unwrap();
    let report = session.apply().unwrap();
    assert!(report.is_empty());
    assert_eq!(report.len(), 0);
    assert_eq!(report.iter_rows().count(), 0);
    assert_eq!(report.values(), Vec::<String>::new());
    assert_eq!(report.distinct_outcomes().len(), 0);
    assert_eq!(report.transformed_count(), 0);
    assert_eq!(report.conforming_count(), 0);
    assert_eq!(report.flagged_count(), 0);
    assert!(report.flagged_values().is_empty());
    assert!(report.is_perfect());
    assert_eq!(report.conformance_ratio(), 1.0);
    // The parallel path agrees on the degenerate case.
    assert_eq!(report, session.apply_parallel().unwrap());
}

#[test]
fn all_flagged_report() {
    // Pure noise: nothing can reach a phone-number target, so every row is
    // flagged and left unchanged (§6.1).
    let data: Vec<String> = (0..60)
        .map(|i| match i % 3 {
            0 => "N/A".to_string(),
            1 => "??".to_string(),
            _ => "-".to_string(),
        })
        .collect();
    let session = ClxSession::new(data.clone())
        .label(tokenize("734-422-8073"))
        .unwrap();
    let report = session.apply().unwrap();
    assert_eq!(report.flagged_count(), 60);
    assert_eq!(report.transformed_count(), 0);
    assert_eq!(report.conforming_count(), 0);
    assert!(report.iter_rows().all(|r| r.is_flagged()));
    // Flagged rows are untouched, in input order — one entry per row even
    // though only 3 distinct outcomes are stored.
    assert_eq!(report.values(), data);
    assert_eq!(report.flagged_values(), data.iter().collect::<Vec<_>>());
    assert_eq!(report.distinct_outcomes().len(), 3);
    assert!(!report.is_perfect());
    assert_eq!(report.conformance_ratio(), 0.0);
    assert_eq!(report, session.apply_parallel().unwrap());
}

#[test]
fn result_patterns_on_the_duplicate_heavy_workload() {
    // The derived-tokenization path of `result_patterns` must agree with a
    // fresh profile of the raw output strings, at scale.
    let session = duplicate_heavy_session(5_000, 100, 23);
    let derived = session.result_patterns().unwrap();
    let fresh = clx::cluster::PatternProfiler::with_options(session.options().profiler.clone())
        .profile_column(&clx::Column::from_rows(session.apply().unwrap().values()));
    assert_eq!(derived, fresh.pattern_summary());
    // Output rows total the input rows.
    assert_eq!(derived.iter().map(|(_, n)| n).sum::<usize>(), 5_000);
}
