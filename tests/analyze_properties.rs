//! Property tests locking the static analyzer's verdicts to runtime truth:
//! every per-branch fact (`reachable`, `extract_safe`, `proven_conforming`)
//! and every language-level claim (`patterns_subsumed`) is checked against
//! the actual first-match/eval behaviour of randomly generated programs on
//! strings generated *from the branch patterns themselves* — the strings a
//! wrong verdict would mis-predict.

use proptest::prelude::*;

use clx::analyze::{analyze_program, DiagnosticCode, Evidence};
use clx::pattern::automaton::patterns_subsumed;
use clx::pattern::{tokenize, Pattern, Quantifier, Token, TokenClass};
use clx::unifi::{eval_expr, Branch, Expr, Program, StringExpr};

/// Strategy: strings drawn from the kind of characters CLX columns contain.
fn data_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            proptest::char::range('a', 'z'),
            proptest::char::range('A', 'Z'),
            proptest::char::range('0', '9'),
            Just('-'),
            Just('.'),
            Just('_'),
            Just('/'),
        ],
        0..10,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// Strategy: a pattern — a tokenized data string with per-token mutations
/// (quantifier loosened to `+`, class generalized up the lattice) so the
/// generated programs exercise subsumption, not just equality.
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    (data_string(), proptest::collection::vec(0usize..4, 0..10)).prop_map(|(s, mutations)| {
        let mut tokens: Vec<Token> = tokenize(&s).tokens().to_vec();
        for (token, m) in tokens.iter_mut().zip(mutations) {
            if token.class.is_literal() {
                continue;
            }
            match m {
                1 => token.quantifier = Quantifier::OneOrMore,
                2 if matches!(token.class, TokenClass::Lower | TokenClass::Upper) => {
                    token.class = TokenClass::Alpha;
                }
                3 => token.class = TokenClass::AlphaNumeric,
                _ => {}
            }
        }
        Pattern::new(tokens)
    })
}

/// Raw plan ingredients: `(kind, a, b)` triples materialized against the
/// source pattern's token count later (the shim has no `prop_flat_map`).
fn arb_expr_spec() -> impl Strategy<Value = Vec<(usize, usize, usize)>> {
    proptest::collection::vec((0usize..2, 0usize..12, 0usize..12), 1..4)
}

/// A transformation plan over a `len`-token source — constants and
/// extracts, with deliberately sometimes-invalid extract bounds.
fn materialize_expr(spec: &[(usize, usize, usize)], len: usize) -> Expr {
    const CONSTS: [&str; 4] = ["-", "0", "ab", "X."];
    let bound = len + 2;
    let parts = spec
        .iter()
        .map(|&(kind, a, b)| {
            if kind == 0 {
                StringExpr::const_str(CONSTS[a % CONSTS.len()])
            } else {
                StringExpr::Extract {
                    from: a % bound,
                    to: b % bound,
                }
            }
        })
        .collect();
    Expr::concat(parts)
}

/// Strategy: a program of such branches plus a target pattern.
fn arb_program() -> impl Strategy<Value = (Program, Pattern)> {
    let branch = (arb_pattern(), arb_expr_spec()).prop_map(|(pattern, spec)| {
        let expr = materialize_expr(&spec, pattern.len());
        Branch::new(pattern, expr)
    });
    (proptest::collection::vec(branch, 1..6), arb_pattern())
        .prop_map(|(branches, target)| (Program::new(branches), target))
}

/// A concrete string the pattern matches, with `+` runs expanded to `reps`
/// and the character for each class varied by `pick`.
fn witness(pattern: &Pattern, reps: usize, pick: usize) -> String {
    let mut out = String::new();
    for (i, token) in pattern.tokens().iter().enumerate() {
        if let Some(text) = token.class.literal_value() {
            out.push_str(text);
            continue;
        }
        let choices: &[char] = match token.class {
            TokenClass::Digit => &['7', '0'],
            TokenClass::Lower => &['x', 'a'],
            TokenClass::Upper => &['X', 'A'],
            TokenClass::Alpha => &['x', 'X'],
            TokenClass::AlphaNumeric => &['x', '7', 'X', '-', '_'],
            TokenClass::Literal(_) => unreachable!(),
        };
        let c = choices[(pick + i) % choices.len()];
        let n = match token.quantifier {
            Quantifier::Exact(n) => n,
            Quantifier::OneOrMore => reps,
        };
        for _ in 0..n {
            out.push(c);
        }
    }
    out
}

/// Probe strings that stress the program: witnesses of every branch pattern
/// and the target (several shapes each), plus a random string.
fn probes(program: &Program, target: &Pattern, random: String) -> Vec<String> {
    let mut probes = vec![random];
    for pattern in program
        .branches
        .iter()
        .map(|b| &b.pattern)
        .chain(std::iter::once(target))
    {
        for (reps, pick) in [(1, 0), (2, 1), (3, 2)] {
            probes.push(witness(pattern, reps, pick));
        }
    }
    probes
}

/// The branch that actually decides `input` under first-match semantics.
fn first_match(program: &Program, input: &str) -> Option<usize> {
    program
        .branches
        .iter()
        .position(|b| b.pattern.matches(input))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Witnesses really are members of their pattern's language — the
    /// generator the other properties stand on.
    #[test]
    fn witnesses_match_their_pattern(pattern in arb_pattern(), reps in 1usize..4, pick in 0usize..8) {
        let w = witness(&pattern, reps, pick);
        prop_assert!(pattern.matches(&w), "{:?} rejects witness {w:?}", pattern.notation());
    }

    /// A branch the analyzer marked unreachable (dead or shadowed) never
    /// wins first-match; conversely every fired branch is marked reachable.
    #[test]
    fn unreachable_branches_never_fire(case in arb_program(), random in data_string()) {
        let (program, target) = case;
        let report = analyze_program(&program, &target);
        for probe in probes(&program, &target, random) {
            if let Some(fired) = first_match(&program, &probe) {
                prop_assert!(
                    report.branch_facts(fired).reachable,
                    "branch {fired} fired on {probe:?} but was marked unreachable"
                );
            }
        }
    }

    /// `extract_safe` is exact on matching rows: safe branches always
    /// evaluate, and branches with a CLX005 finding never do (the analyzer
    /// claims *every* matching row raises).
    #[test]
    fn extract_safety_agrees_with_eval(case in arb_program(), random in data_string()) {
        let (program, target) = case;
        let report = analyze_program(&program, &target);
        for probe in probes(&program, &target, random) {
            for (index, branch) in program.branches.iter().enumerate() {
                if !branch.pattern.matches(&probe) {
                    continue;
                }
                let result = eval_expr(&branch.expr, &branch.pattern, &probe);
                if report.branch_facts(index).extract_safe {
                    prop_assert!(
                        result.is_ok(),
                        "safe branch {index} failed on {probe:?}: {result:?}"
                    );
                } else {
                    prop_assert!(
                        result.is_err(),
                        "unsafe branch {index} evaluated {probe:?} to {result:?}"
                    );
                }
            }
        }
    }

    /// `proven_conforming` is sound: whenever such a branch decides a row,
    /// the produced output matches the target pattern.
    #[test]
    fn proven_conformance_holds_at_runtime(case in arb_program(), random in data_string()) {
        let (program, target) = case;
        let report = analyze_program(&program, &target);
        for probe in probes(&program, &target, random) {
            let Some(fired) = first_match(&program, &probe) else { continue };
            if !report.branch_facts(fired).proven_conforming {
                continue;
            }
            let branch = &program.branches[fired];
            let out = eval_expr(&branch.expr, &branch.pattern, &probe)
                .expect("proven-conforming branches are extract-safe");
            prop_assert!(
                target.matches(&out),
                "branch {fired} proved conforming but {probe:?} -> {out:?} escapes the target"
            );
        }
    }

    /// A CLX004 (redundant) branch only ever fires on rows the target
    /// already accepts — rewriting them was unnecessary by definition.
    #[test]
    fn redundant_branches_only_match_conforming_rows(case in arb_program(), random in data_string()) {
        let (program, target) = case;
        let report = analyze_program(&program, &target);
        let redundant: Vec<usize> = report
            .by_code(DiagnosticCode::RedundantBranch)
            .filter_map(|d| d.branch)
            .collect();
        for probe in probes(&program, &target, random) {
            for &index in &redundant {
                if program.branches[index].pattern.matches(&probe) {
                    prop_assert!(
                        target.matches(&probe),
                        "redundant branch {index} matched non-conforming {probe:?}"
                    );
                }
            }
        }
    }

    /// Diagnostic witnesses are concrete evidence, not guesses: an overlap
    /// witness matches both patterns, a divergence witness matches the
    /// abstract output pattern and escapes the target.
    #[test]
    fn diagnostic_witnesses_are_verifiable(case in arb_program()) {
        let (program, target) = case;
        let report = analyze_program(&program, &target);
        for diag in &report.diagnostics {
            match &diag.evidence {
                Evidence::Overlap { other, witness } => {
                    let branch = diag.branch.unwrap();
                    prop_assert!(program.branches[branch].pattern.matches(witness));
                    prop_assert!(program.branches[*other].pattern.matches(witness));
                }
                Evidence::OutputDiverges { output, witness: Some(w) } => {
                    prop_assert!(output.matches(w));
                    prop_assert!(!target.matches(w));
                }
                _ => {}
            }
        }
    }

    /// The language-inclusion primitive everything rests on: a `Some(true)`
    /// subsumption verdict means every witness of the subsumed pattern is
    /// claimed by at least one of the covers.
    #[test]
    fn subsumption_verdicts_agree_with_matching(sub in arb_pattern(), covers in proptest::collection::vec(arb_pattern(), 1..4)) {
        let cover_refs: Vec<&Pattern> = covers.iter().collect();
        if patterns_subsumed(&sub, &cover_refs) == Some(true) {
            for (reps, pick) in [(1, 0), (2, 1), (3, 2), (2, 3)] {
                let w = witness(&sub, reps, pick);
                prop_assert!(
                    covers.iter().any(|c| c.matches(&w)),
                    "witness {w:?} of subsumed {:?} escapes all covers",
                    sub.notation()
                );
            }
        }
    }
}
