//! Cross-chunk dedup equivalence: pushing a column split into K chunks
//! through the persistent interner must yield reports row-for-row identical
//! to one-shot `execute_column` — including `Flagged` rows and repeated
//! values straddling chunk boundaries — while deciding each distinct value
//! once per stream and dispatching on the dense leaf-id index.

use clx::{ClxSession, Column, ColumnStream, RowOutcome};
use clx_column::ColumnInterner;
use clx_datagen::duplicate_heavy_case;

/// A duplicate-heavy column with all study phone formats plus `N/A` noise
/// (so conforming, transformed *and* flagged rows all occur), and a
/// compiled program for it.
fn workload(rows: usize, distinct: usize) -> (Vec<String>, clx::CompiledProgram) {
    let case = duplicate_heavy_case(rows, distinct, 11);
    let session = ClxSession::new(case.data.clone())
        .label_by_example(&case.target_example)
        .expect("label");
    let compiled = session.compile().expect("compile");
    (case.data, compiled)
}

#[test]
fn k_chunk_column_stream_equals_one_shot_execute_column() {
    let (data, compiled) = workload(20_000, 200);
    let one_shot = compiled.execute_column(&Column::from_rows(data.clone()));
    assert!(one_shot.stats.flagged > 0, "workload must exercise Flagged");
    assert!(one_shot.stats.transformed > 0);

    // Chunk sizes chosen so repeated values straddle every boundary (the
    // column has ~200 distinct values, so a 777-row chunk shares almost all
    // of them with its neighbours).
    for chunk_size in [777usize, 1_000, 19_999] {
        let mut stream = ColumnStream::from_program(
            ClxSession::new(data.clone())
                .label_by_example("734-422-8073")
                .expect("label")
                .compile()
                .expect("compile"),
        );
        let mut streamed: Vec<RowOutcome> = Vec::new();
        for chunk in data.chunks(chunk_size) {
            let report = stream.push_rows(chunk);
            assert!(report.is_columnar());
            // Columnar chunk reports store one outcome per distinct value
            // in the chunk, never one per row.
            assert!(report.outcomes().len() <= report.len());
            streamed.extend(report.iter_rows().cloned());
        }
        // Each distinct value was decided exactly once for the whole
        // stream, not once per chunk.
        assert_eq!(
            stream.distinct_decided(),
            stream.interner().distinct_count()
        );
        assert_eq!(
            stream.interner().distinct_count(),
            Column::from_rows(data.clone()).distinct_count()
        );
        // Dispatch ran exclusively on the dense leaf-id tier.
        assert_eq!(stream.dispatch_cache().len(), 0);
        assert_eq!(
            stream.dispatch_cache().dense_len(),
            stream.interner().leaf_count()
        );

        let summary = stream.finish();
        assert_eq!(summary.stats, one_shot.stats);
        assert_eq!(summary.rows(), data.len());
        assert_eq!(streamed.len(), one_shot.len());
        for (row, (got, want)) in streamed.iter().zip(one_shot.iter_rows()).enumerate() {
            assert_eq!(got, want, "row {row} (chunk size {chunk_size})");
        }
    }
}

#[test]
fn external_interner_chunks_equal_one_shot_execution() {
    let (data, compiled) = workload(6_000, 120);
    let one_shot = compiled.execute_column(&Column::from_rows(data.clone()));

    // Drive StreamSession::push_column_chunk directly with a caller-owned
    // interner (the non-owning variant of the columnar path).
    let mut interner = ColumnInterner::new();
    let mut session = compiled.stream();
    let mut streamed: Vec<RowOutcome> = Vec::new();
    for rows in data.chunks(499) {
        let chunk = interner.chunk(rows);
        let report = session.push_column_chunk(&chunk);
        assert_eq!(report.len(), rows.len());
        streamed.extend(report.iter_rows().cloned());
    }
    let summary = session.finish();
    assert_eq!(summary.stats, one_shot.stats);
    assert_eq!(streamed, one_shot.into_row_outcomes());
}

#[test]
fn repeats_straddling_chunk_boundaries_share_one_outcome() {
    let session = ClxSession::new(vec![
        "111.222.3333".to_string(),
        "N/A".to_string(),
        "444.555.6666".to_string(),
    ])
    .label_by_example("111-222-3333")
    .expect("label");
    let mut stream = session.stream_columns().expect("stream");

    // Chunk 1 introduces both values; chunk 2 is nothing but repeats.
    let first = stream.push_rows(&["111.222.3333", "N/A", "111.222.3333"]);
    assert_eq!(first.outcomes().len(), 2);
    assert_eq!(first.stats.flagged, 1);
    let decided_after_first = stream.distinct_decided();

    let second = stream.push_rows(&["N/A", "111.222.3333", "N/A", "N/A"]);
    assert_eq!(second.len(), 4);
    assert_eq!(second.outcomes().len(), 2);
    assert_eq!(second.stats.flagged, 3, "flagged repeats keep flagging");
    assert_eq!(
        stream.distinct_decided(),
        decided_after_first,
        "no value was re-decided for the repeat-only chunk"
    );
    assert_eq!(
        second.iter_values().collect::<Vec<_>>(),
        vec!["N/A", "111-222-3333", "N/A", "N/A"]
    );

    let summary = stream.finish();
    assert_eq!(summary.rows(), 7);
    assert_eq!(summary.stats.flagged, 4);
    assert_eq!(summary.stats.transformed, 3);
}
