//! Cross-check of the stream's *estimated* memory accounting against the
//! *actual* allocator: `StreamSummary::peak_memory_bytes` is a model
//! (interned bytes + table/cache estimates), and this binary installs a
//! counting `#[global_allocator]` to measure how honest that model is.
//!
//! The whole binary holds exactly one test so the counters see only the
//! stream under test; chunks are generated on the fly and dropped after
//! each push so the input data never dominates the measurement.
//!
//! The estimate deliberately under-counts the process truth — it models
//! retained columnar state (arena bytes, intern tables, decision cache,
//! dispatch plans) and not allocator headers, `Vec` growth slack, the
//! in-flight chunk being interned, or the per-chunk report — so the
//! interesting direction is a *lower* bound: the estimate must be a
//! substantial fraction of the allocator-observed peak, not off by an
//! order of magnitude.
//!
//! Measured on this container (adversarial all-distinct stream, budget
//! `max_distinct(10_000)`, 10k-row chunks):
//!
//! * release, 1M rows:  estimate 16.9 MB vs allocator peak delta 21.1 MB
//!   — ratio (actual/estimate) 1.25;
//! * debug, 200k rows:  identical peaks, ratio 1.25 (memory is flat once
//!   the budget binds, so stream length does not move either number).
//!
//! The test asserts the ratio stays in `[1.0, 3.0]`: the model may never
//! *over*-state what the allocator saw (it skips real overheads, so
//! actual ≥ estimate), and it must stay within 3x of the truth.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use clx::pattern::tokenize;
use clx::unifi::{Branch, Expr, Program, StringExpr};
use clx::{ColumnStream, CompiledProgram, StreamBudget};
use std::sync::Arc;

/// `System`, with live/peak byte counters on the side.
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(bytes: usize) {
    let live = LIVE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            if new_size >= layout.size() {
                on_alloc(new_size - layout.size());
            } else {
                LIVE.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The workspace's standard phone-rewrite program (see
/// `tests/stream_properties.rs`).
fn program() -> Arc<CompiledProgram> {
    let program = Program::new(vec![Branch::new(
        tokenize("734.236.3466"),
        Expr::concat(vec![
            StringExpr::extract(1),
            StringExpr::const_str("-"),
            StringExpr::extract(3),
            StringExpr::const_str("-"),
            StringExpr::extract(5),
        ]),
    )]);
    Arc::new(CompiledProgram::compile(&program, &tokenize("734-422-8073")).unwrap())
}

#[test]
fn peak_memory_estimate_tracks_the_allocator() {
    // The full 1M-row adversarial stream in release; a 200k prefix in
    // debug so `cargo test` stays fast. The ratio is shape-, not
    // length-dependent: memory is flat after the budget binds.
    const ROWS: usize = if cfg!(debug_assertions) {
        200_000
    } else {
        1_000_000
    };
    const CHUNK: usize = 10_000;
    const BUDGET: usize = 10_000;

    let program = program();

    // Baseline after the program is built: everything allocated from here
    // on is the stream's doing (plus transient chunks and reports).
    let live_before = LIVE.load(Ordering::Relaxed);
    PEAK.store(live_before, Ordering::Relaxed);

    let mut stream = ColumnStream::with_budget(program, StreamBudget::max_distinct(BUDGET));
    for c in 0..(ROWS / CHUNK) {
        // Every row a brand-new distinct value (the shape that maximizes
        // retained state per row); every 7th junk so flags stream too.
        let rows: Vec<String> = (0..CHUNK)
            .map(|i| {
                let n = c * CHUNK + i;
                if n % 7 == 3 {
                    format!("junk!{n:08}")
                } else {
                    format!("{:03}.{:03}.{:04}", n % 1000, (n / 1000) % 1000, n % 10_000)
                }
            })
            .collect();
        stream.push_rows(&rows);
    }

    let summary = stream.finish();
    let actual_peak = PEAK.load(Ordering::Relaxed) - live_before;
    let estimate = summary.peak_memory_bytes;
    let ratio = actual_peak as f64 / estimate as f64;
    println!(
        "rows {ROWS}: estimated peak {estimate} B, allocator peak delta {actual_peak} B, \
         ratio (actual/estimate) {ratio:.2}"
    );

    assert_eq!(summary.rows(), ROWS);
    assert!(summary.evictions > 0, "budget never bound — bad workload");
    // The model never claims more than the allocator saw…
    assert!(
        ratio >= 1.0,
        "estimate {estimate} B exceeds allocator-observed peak {actual_peak} B"
    );
    // …and stays within 3x of it (measured ~1.2–1.3 here; 3x leaves room
    // for allocator/platform variance without letting the model drift
    // into fiction).
    assert!(
        ratio <= 3.0,
        "estimate {estimate} B is less than a third of the allocator-observed \
         peak {actual_peak} B"
    );
}
