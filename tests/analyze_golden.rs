//! Golden test for the static analyzer: one hand-built program exhibiting
//! every diagnostic the analyzer can emit, with exact codes, branches,
//! severities and machine-readable evidence asserted.
//!
//! The program's branches, against target `<D>3'-'<D>4`:
//!
//! | # | pattern | plan | expected finding |
//! |---|---------|------|------------------|
//! | 0 | `<D>+'.'<D>+` | `x1 "-" x3` | CLX006 (output `<D>+'-'<D>+` diverges) |
//! | 1 | `<D>2'.'<D>2` | const | CLX002 (shadowed by 0) |
//! | 2 | `<D>3'-'<D>4` | `x1 "-" x3` | CLX004 (target already covers it) |
//! | 3 | `'('<D>3')'<D>4` | 3 bad extracts | CLX005 × 3 (one per rule) |
//! | 4 | `<D><AN>` | const | — (overlap partner) |
//! | 5 | `<AN><D>` | const | CLX003 (overlaps 4) |
//! | 6–10 | `<D>` `<L>` `<U>` `'-'` `'_'` | const | clean, proven conforming |
//! | 11 | `<AN>` | const | CLX001 (union of 6–10 starves it) |

use clx::analyze::{analyze_program, DiagnosticCode, Evidence, Severity};
use clx::unifi::{Branch, Expr, ExtractRule, StringExpr};
use clx::{parse_pattern, Pattern, Program};

fn pat(notation: &str) -> Pattern {
    parse_pattern(notation).expect("pattern notation")
}

fn rewrite_1_dash_3() -> Expr {
    Expr::concat(vec![
        StringExpr::extract(1),
        StringExpr::const_str("-"),
        StringExpr::extract(3),
    ])
}

fn const_expr(s: &str) -> Expr {
    Expr::concat(vec![StringExpr::const_str(s)])
}

fn golden_program() -> (Program, Pattern) {
    let target = pat("<D>3'-'<D>4");
    let program = Program::new(vec![
        Branch::new(pat("<D>+'.'<D>+"), rewrite_1_dash_3()), // 0: CLX006
        Branch::new(pat("<D>2'.'<D>2"), const_expr("000-0000")), // 1: CLX002
        Branch::new(pat("<D>3'-'<D>4"), rewrite_1_dash_3()), // 2: CLX004
        Branch::new(
            // 3: CLX005 × 3 — source has 4 tokens.
            pat("'('<D>3')'<D>4"),
            // Built as raw variants: `extract_range` debug-asserts the
            // well-formedness this branch deliberately violates.
            Expr::concat(vec![
                StringExpr::Extract { from: 0, to: 1 }, // ZeroIndex
                StringExpr::Extract { from: 3, to: 2 }, // InvertedRange
                StringExpr::Extract { from: 1, to: 9 }, // PastEnd
            ]),
        ),
        Branch::new(pat("<D><AN>"), const_expr("111-1111")), // 4
        Branch::new(pat("<AN><D>"), const_expr("111-1111")), // 5: CLX003 vs 4
        Branch::new(pat("<D>"), const_expr("123-4567")),     // 6
        Branch::new(pat("<L>"), const_expr("123-4567")),     // 7
        Branch::new(pat("<U>"), const_expr("123-4567")),     // 8
        Branch::new(pat("'-'"), const_expr("123-4567")),     // 9
        Branch::new(pat("'_'"), const_expr("123-4567")),     // 10
        Branch::new(pat("<AN>"), const_expr("123-4567")),    // 11: CLX001
    ]);
    (program, target)
}

#[test]
fn every_diagnostic_code_fires_exactly_where_designed() {
    let (program, target) = golden_program();
    let report = analyze_program(&program, &target);

    // The analysis is complete: small automaton, small search space.
    assert_eq!(
        report.by_code(DiagnosticCode::AnalysisIncomplete).count(),
        0
    );
    assert!(report.has_errors());

    // CLX006 — branch 0's output language escapes the target.
    let diverging: Vec<_> = report
        .by_code(DiagnosticCode::UnprovenConformance)
        .collect();
    assert_eq!(diverging.len(), 1);
    let d = diverging[0];
    assert_eq!(d.branch, Some(0));
    assert_eq!(d.severity, Severity::Warning);
    match &d.evidence {
        Evidence::OutputDiverges { output, witness } => {
            assert_eq!(output, &pat("<D>+'-'<D>+"));
            let w = witness.as_deref().expect("concrete witness");
            assert!(output.matches(w), "witness {w:?} must match the output");
            assert!(!target.matches(w), "witness {w:?} must escape the target");
        }
        other => panic!("wrong evidence: {other:?}"),
    }

    // CLX002 — branch 1 is starved by branch 0 alone.
    let shadowed: Vec<_> = report.by_code(DiagnosticCode::ShadowedBranch).collect();
    assert_eq!(shadowed.len(), 1);
    assert_eq!(shadowed[0].branch, Some(1));
    assert_eq!(shadowed[0].severity, Severity::Error);
    assert_eq!(shadowed[0].evidence, Evidence::ShadowedBy { earlier: 0 });

    // CLX004 — branch 2 duplicates the target's language.
    let redundant: Vec<_> = report.by_code(DiagnosticCode::RedundantBranch).collect();
    assert_eq!(redundant.len(), 1);
    assert_eq!(redundant[0].branch, Some(2));
    assert_eq!(redundant[0].severity, Severity::Warning);
    assert_eq!(redundant[0].evidence, Evidence::CoveredByTarget);

    // CLX005 — branch 3, one finding per plan part, each naming its rule.
    let unsafe_extracts: Vec<_> = report.by_code(DiagnosticCode::UnsafeExtract).collect();
    assert_eq!(unsafe_extracts.len(), 3);
    let expected = [
        (0, 0, 1, ExtractRule::ZeroIndex),
        (1, 3, 2, ExtractRule::InvertedRange),
        (2, 1, 9, ExtractRule::PastEnd),
    ];
    for (diag, (part, from, to, rule)) in unsafe_extracts.iter().zip(expected) {
        assert_eq!(diag.branch, Some(3));
        assert_eq!(diag.severity, Severity::Error);
        assert_eq!(
            diag.evidence,
            Evidence::ExtractBounds {
                part,
                from,
                to,
                pattern_len: 4,
                rule,
            }
        );
    }

    // CLX003 — branches 4 and 5 overlap; the later one carries the warning
    // with a concrete string both patterns accept.
    let overlaps: Vec<_> = report.by_code(DiagnosticCode::AmbiguousOverlap).collect();
    assert_eq!(overlaps.len(), 1);
    assert_eq!(overlaps[0].branch, Some(5));
    assert_eq!(overlaps[0].severity, Severity::Warning);
    match &overlaps[0].evidence {
        Evidence::Overlap { other, witness } => {
            assert_eq!(*other, 4);
            assert!(pat("<D><AN>").matches(witness), "witness {witness:?}");
            assert!(pat("<AN><D>").matches(witness), "witness {witness:?}");
        }
        other => panic!("wrong evidence: {other:?}"),
    }

    // CLX001 — branch 11 dies under the union of 6–10 (no single culprit).
    let dead: Vec<_> = report.by_code(DiagnosticCode::DeadBranch).collect();
    assert_eq!(dead.len(), 1);
    assert_eq!(dead[0].branch, Some(11));
    assert_eq!(dead[0].severity, Severity::Error);
    assert_eq!(
        dead[0].evidence,
        Evidence::Unreachable {
            earlier: (0..11).collect()
        }
    );

    // No finding fired anywhere it was not designed to.
    for diag in &report.diagnostics {
        let expected_branches: &[usize] = match diag.code {
            DiagnosticCode::UnprovenConformance => &[0],
            DiagnosticCode::ShadowedBranch => &[1],
            DiagnosticCode::RedundantBranch => &[2],
            DiagnosticCode::UnsafeExtract => &[3],
            DiagnosticCode::AmbiguousOverlap => &[5],
            DiagnosticCode::DeadBranch => &[11],
            DiagnosticCode::AnalysisIncomplete => &[],
        };
        assert!(
            expected_branches.contains(&diag.branch.expect("branch-level finding")),
            "unexpected finding: {diag}"
        );
    }
}

#[test]
fn branch_facts_summarize_the_whole_report() {
    let (program, target) = golden_program();
    let report = analyze_program(&program, &target);

    let reachable: Vec<usize> = (0..12)
        .filter(|&i| report.branch_facts(i).reachable)
        .collect();
    let extract_safe: Vec<usize> = (0..12)
        .filter(|&i| report.branch_facts(i).extract_safe)
        .collect();
    let proven: Vec<usize> = (0..12)
        .filter(|&i| report.branch_facts(i).proven_conforming)
        .collect();

    assert_eq!(reachable, vec![0, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
    assert_eq!(extract_safe, vec![0, 1, 2, 4, 5, 6, 7, 8, 9, 10, 11]);
    // Conformance is proven exactly where the branch is live, extract-safe
    // and its output language is contained in the target's.
    assert_eq!(proven, vec![2, 4, 5, 6, 7, 8, 9, 10]);
}

#[test]
fn rendered_report_lists_errors_before_warnings() {
    let (program, target) = golden_program();
    let report = analyze_program(&program, &target);
    let rendered = report.to_string();
    let first_warning = rendered.find("warning [").expect("has warnings");
    let last_error = rendered.rfind("error [").expect("has errors");
    assert!(
        last_error < first_warning,
        "errors must render first:\n{rendered}"
    );
}
